package core

import (
	"context"
	"fmt"
	"sort"

	"sgb/internal/geom"
	"sgb/internal/rtree"
	"sgb/internal/unionfind"
)

// AnyGrouper is a streaming SGB-Any operator instance (Procedure 7). Group
// identity is tracked in a Union-Find forest: a new point unions with every
// ε-neighbour, which transparently merges all candidate groups into one
// (Procedure 9's MergeGroupsInsert).
type AnyGrouper struct {
	opt  Options
	dim  int
	cols geom.Cols // columnar store of every processed point
	uf   *unionfind.Forest
	tree *rtree.Tree // IndexBounds only (Points_IX)

	// Reusable kernel scratch: candidate ids gathered from the index, a
	// columnar slab of their coordinates, and the distance/verdict buffers
	// for one geom.WithinMask call. All are grow-once, alloc-free steady
	// state.
	idxBuf []int
	scr    geom.Cols
	dists  []float64
	mask   []bool
	ptBuf  geom.Point
	// verBuf is the candidate-side scratch of the scalar verification path.
	// It must stay distinct from ptBuf: AddCols feeds probe points through
	// ptBuf, so reusing it inside Add would clobber p mid-scan.
	verBuf geom.Point

	stats    Stats
	finished bool

	// trackLinks arms AddLinked's merge recording: union appends to links
	// whenever a union actually joins two distinct components.
	trackLinks bool
	links      []int

	// ctx, when set via WithContext, lets a canceled or deadline-expired
	// query abort the grouping mid-stream; ctxTick strides the polls.
	ctx     context.Context
	ctxTick uint64
}

// NewAnyGrouper returns a streaming SGB-Any operator configured by opt. The
// Overlap clause is ignored: overlapping groups always merge. Supported
// algorithms are AllPairs and IndexBounds; the rectangle formulation of
// BoundsChecking does not apply to the distance-to-any semantics (§7.1) and
// is rejected.
func NewAnyGrouper(opt Options) (*AnyGrouper, error) {
	opt.Overlap = JoinAny // irrelevant for SGB-Any; normalize for Validate
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if opt.Algorithm == BoundsChecking {
		return nil, fmt.Errorf("core: SGB-Any has no Bounds-Checking variant (use AllPairs or IndexBounds)")
	}
	return &AnyGrouper{opt: opt, uf: &unionfind.Forest{}}, nil
}

// WithContext arms the grouper with a cancellation context: Add returns
// ctx.Err() promptly once ctx is done. It returns g for chaining.
func (g *AnyGrouper) WithContext(ctx context.Context) *AnyGrouper {
	g.ctx = ctx
	return g
}

// checkCtx polls the context every ctxCheckStride calls.
func (g *AnyGrouper) checkCtx() error {
	if g.ctx == nil {
		return nil
	}
	g.ctxTick++
	if g.ctxTick%ctxCheckStride != 0 {
		return nil
	}
	return g.ctx.Err()
}

// Add feeds the next point, in input order, and returns its point id.
func (g *AnyGrouper) Add(p geom.Point) (int, error) {
	if g.finished {
		return 0, fmt.Errorf("core: Add after Finish")
	}
	if err := checkFinite(p); err != nil {
		return 0, err
	}
	if err := g.checkCtx(); err != nil {
		return 0, err
	}
	if g.dim == 0 {
		if len(p) == 0 {
			return 0, fmt.Errorf("core: zero-dimensional point")
		}
		g.dim = len(p)
		g.cols = geom.NewCols(g.dim)
		g.scr = geom.NewCols(g.dim)
		if g.opt.Algorithm == IndexBounds {
			g.tree = rtree.New(g.dim)
		}
	} else if len(p) != g.dim {
		return 0, ErrDimensionMismatch
	}
	id := g.cols.Len()
	g.cols.AppendPoint(p)
	g.uf.MakeSet()
	g.stats.Points++

	switch g.opt.Algorithm {
	case AllPairs:
		// Naive FindCandidateGroups: probe every processed point. The probe
		// runs block-wise through the columnar store — one WithinMask kernel
		// call per kernelBlock rows instead of a geom.Within call per point.
		var view geom.Cols
		for lo := 0; lo < id; lo += kernelBlock {
			hi := lo + kernelBlock
			if hi > id {
				hi = id
			}
			view.SliceInto(g.cols, lo, hi)
			dists, mask := g.scratch(hi - lo)
			g.stats.DistanceComps += int64(hi - lo)
			geom.WithinMask(g.opt.Metric, view, p, g.opt.Eps, dists, mask)
			for i, in := range mask[:hi-lo] {
				if in {
					g.union(id, lo+i)
				}
			}
		}
	case IndexBounds:
		// FindCandidateGroups (Procedure 8): a window query on Points_IX
		// retrieves the points within ε under L∞ exactly; under L2 the
		// box is a conservative filter and VerifyPoints re-checks each
		// hit with the exact distance — gathered into a columnar slab and
		// verified with one kernel call instead of per-hit Within calls.
		pBox := geom.BoxAround(p, g.opt.Eps)
		g.stats.WindowQueries++
		g.idxBuf = g.idxBuf[:0]
		g.tree.Search(pBox, func(ref int64) bool {
			g.idxBuf = append(g.idxBuf, int(ref))
			return true
		})
		if g.opt.Metric == geom.LInf {
			// Box hits are exact under L∞: no verification pass.
			for _, q := range g.idxBuf {
				g.union(id, q)
			}
		} else if n := len(g.idxBuf); n <= kernelHead {
			// Small candidate sets verify point-at-a-time: the gather copy
			// and kernel dispatch cost more than the handful of distance
			// computations they would batch.
			for _, q := range g.idxBuf {
				g.stats.DistanceComps++
				g.verBuf = g.cols.PointAt(q, g.verBuf)
				if geom.Within(g.opt.Metric, g.verBuf, p, g.opt.Eps) {
					g.union(id, q)
				}
			}
		} else {
			g.scr.Gather(g.cols, g.idxBuf)
			dists, mask := g.scratch(n)
			g.stats.DistanceComps += int64(n)
			geom.WithinMask(g.opt.Metric, g.scr, p, g.opt.Eps, dists, mask)
			for i, in := range mask[:n] {
				if in {
					g.union(id, g.idxBuf[i])
				}
			}
		}
		g.tree.Insert(geom.PointRect(p), int64(id))
		g.stats.IndexUpdates++
	}
	return id, nil
}

// scratch returns the distance and mask buffers grown to hold n rows.
func (g *AnyGrouper) scratch(n int) ([]float64, []bool) {
	if cap(g.dists) < n {
		// Grow with headroom: candidate sets in dense clusters grow with
		// every insertion, so exact-fit growth would reallocate on nearly
		// every new running max.
		g.dists = make([]float64, 2*n)
		g.mask = make([]bool, 2*n)
	}
	return g.dists[:n], g.mask[:n]
}

// AddCols feeds every point of a columnar batch in row order, as if each had
// been passed to Add. The coordinates are copied out of c; c is not retained.
func (g *AnyGrouper) AddCols(c geom.Cols) error {
	n := c.Len()
	for i := 0; i < n; i++ {
		g.ptBuf = c.PointAt(i, g.ptBuf)
		if _, err := g.Add(g.ptBuf); err != nil {
			return err
		}
	}
	return nil
}

// union merges the groups of a and b, counting actual merges.
func (g *AnyGrouper) union(a, b int) {
	if g.uf.Find(a) != g.uf.Find(b) {
		g.stats.GroupsMerged++
		g.uf.Union(a, b)
		if g.trackLinks {
			g.links = append(g.links, b)
		}
	}
}

// AddLinked is the incremental-maintenance entry point: it feeds the next
// point like Add and additionally reports which pre-existing groups the point
// connected to. links holds exactly one member point id per distinct prior
// connected component the new point was united with (the component's
// representative at union time), in probe order — an empty slice means the
// point founded a new singleton group. The returned slice is reused by the
// next AddLinked call; callers that retain it must copy.
func (g *AnyGrouper) AddLinked(p geom.Point) (id int, links []int, err error) {
	g.trackLinks = true
	g.links = g.links[:0]
	id, err = g.Add(p)
	g.trackLinks = false
	if err != nil {
		return 0, nil, err
	}
	return id, g.links, nil
}

// Snapshot materializes the current connected components without consuming
// the grouper: unlike Finish, the grouper keeps accepting points afterwards.
// The result is bit-identical to what Finish would return at this prefix —
// groups sorted by smallest member, members ascending — which is the
// invariant incremental view maintenance is checked against.
func (g *AnyGrouper) Snapshot() ([]Group, error) {
	if g.finished {
		return nil, fmt.Errorf("core: Snapshot after Finish")
	}
	var groups []Group
	for _, ids := range g.uf.Groups() {
		sort.Ints(ids)
		groups = append(groups, Group{IDs: ids})
	}
	sort.Slice(groups, func(i, j int) bool {
		return groups[i].IDs[0] < groups[j].IDs[0]
	})
	return groups, nil
}

// Finish materializes the connected components as groups. The grouper cannot
// be reused afterwards.
func (g *AnyGrouper) Finish() (*Result, error) {
	if g.finished {
		return nil, fmt.Errorf("core: Finish called twice")
	}
	g.finished = true
	g.stats.Rounds = 1
	res := &Result{Stats: g.stats}
	for _, ids := range g.uf.Groups() {
		sort.Ints(ids)
		res.Groups = append(res.Groups, Group{IDs: ids})
	}
	sort.Slice(res.Groups, func(i, j int) bool {
		return res.Groups[i].IDs[0] < res.Groups[j].IDs[0]
	})
	return res, nil
}

// SGBAny groups points with the DISTANCE-TO-ANY semantics in input order and
// returns the final grouping. It is the batch convenience wrapper around
// AnyGrouper.
func SGBAny(points []geom.Point, opt Options) (*Result, error) {
	g, err := NewAnyGrouper(opt)
	if err != nil {
		return nil, err
	}
	for _, p := range points {
		if _, err := g.Add(p); err != nil {
			return nil, err
		}
	}
	return g.Finish()
}

// SGBAnyCols is SGBAny over a columnar point set.
func SGBAnyCols(c geom.Cols, opt Options) (*Result, error) {
	g, err := NewAnyGrouper(opt)
	if err != nil {
		return nil, err
	}
	if err := g.AddCols(c); err != nil {
		return nil, err
	}
	return g.Finish()
}
