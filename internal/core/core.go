// Package core implements the paper's primary contribution: the SGB-All and
// SGB-Any similarity group-by operators over multi-dimensional data.
//
// SGB-All (DISTANCE-TO-ALL) forms maximal groups in which every pair of
// members satisfies the similarity predicate ξ(δ,ε) — each group is a clique
// in the ε-neighbourhood graph. Tuples qualifying for several groups are
// arbitrated by the ON-OVERLAP clause (JOIN-ANY, ELIMINATE, FORM-NEW-GROUP).
//
// SGB-Any (DISTANCE-TO-ANY) forms groups in which every member is within ε of
// at least one other member — the connected components of the ε-neighbourhood
// graph. Overlaps merge groups, so no arbitration clause exists.
//
// Both operators are streaming: tuples are consumed in input order and groups
// are built on the fly, exactly like the executor extension in the paper
// (grouping is therefore insertion-order sensitive, cf. Figure 2). Three
// algorithm variants are provided for SGB-All — All-Pairs (Procedure 2),
// Bounds-Checking with the ε-All rectangle (Procedure 4), and on-the-fly
// Index Bounds-Checking with an R-tree over group rectangles (Procedure 5) —
// and two for SGB-Any — All-Pairs and the R-tree + Union-Find index method
// (Procedures 7–9).
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"sgb/internal/geom"
)

// Overlap is the ON-OVERLAP arbitration clause of SGB-All: the action taken
// when a data point satisfies the membership criterion of multiple groups.
type Overlap uint8

const (
	// JoinAny inserts the overlapping point into one arbitrarily chosen
	// candidate group.
	JoinAny Overlap = iota
	// Eliminate discards overlapping points (the Oset of Definition 4).
	Eliminate
	// FormNewGroup diverts overlapping points into a fresh set S′ that is
	// re-grouped recursively once the input is exhausted.
	FormNewGroup
)

// String returns the SQL spelling of the clause.
func (o Overlap) String() string {
	switch o {
	case JoinAny:
		return "JOIN-ANY"
	case Eliminate:
		return "ELIMINATE"
	case FormNewGroup:
		return "FORM-NEW-GROUP"
	default:
		return fmt.Sprintf("Overlap(%d)", uint8(o))
	}
}

// ParseOverlap maps SQL spellings ("JOIN-ANY", "join_any", "form-new-group",
// "FORM-NEW", ...) onto an Overlap clause.
func ParseOverlap(s string) (Overlap, error) {
	switch strings.ToUpper(strings.NewReplacer("-", "", "_", "", " ", "").Replace(s)) {
	case "JOINANY":
		return JoinAny, nil
	case "ELIMINATE":
		return Eliminate, nil
	case "FORMNEWGROUP", "FORMNEW":
		return FormNewGroup, nil
	default:
		return 0, fmt.Errorf("core: unknown ON-OVERLAP clause %q", s)
	}
}

// Algorithm selects the physical implementation of an operator.
type Algorithm uint8

const (
	// AllPairs is the naive baseline: every incoming point is compared
	// against every previously processed point (Procedure 2).
	AllPairs Algorithm = iota
	// BoundsChecking maintains an ε-All bounding rectangle per group and
	// scans the group list linearly (Procedure 4). SGB-Any has no
	// rectangle formulation (§7.1), so BoundsChecking is SGB-All only.
	BoundsChecking
	// IndexBounds additionally indexes the group rectangles (SGB-All,
	// Procedure 5) or the processed points (SGB-Any, Procedure 8) in an
	// on-the-fly R-tree.
	IndexBounds
)

// String names the algorithm the way the paper's figures do.
func (a Algorithm) String() string {
	switch a {
	case AllPairs:
		return "All-Pairs"
	case BoundsChecking:
		return "Bounds-Checking"
	case IndexBounds:
		return "on-the-fly Index"
	default:
		return fmt.Sprintf("Algorithm(%d)", uint8(a))
	}
}

// Options configures an SGB operator instance.
type Options struct {
	// Metric is the Minkowski distance function δ (geom.L2 or geom.LInf).
	Metric geom.Metric
	// Eps is the similarity threshold ε of the predicate ξ(δ,ε). It must be
	// positive and finite.
	Eps float64
	// Overlap is the ON-OVERLAP clause; it only applies to SGB-All.
	Overlap Overlap
	// Algorithm selects the implementation variant. SGB-Any accepts
	// AllPairs and IndexBounds.
	Algorithm Algorithm
	// Rand supplies the randomness used by the JOIN-ANY arbitration. When
	// nil, the first candidate group (in discovery order) is chosen, which
	// makes runs deterministic.
	Rand *rand.Rand
	// DisableHullRefine turns off the convex-hull refinement of the L2
	// bounds-checking filter (Procedure 6) and falls back to exact member
	// scans. It exists for the ablation benchmarks.
	DisableHullRefine bool
}

// Validate reports whether the options are internally consistent.
func (o Options) Validate() error {
	if !(o.Eps > 0) {
		return fmt.Errorf("core: similarity threshold must be positive, got %v", o.Eps)
	}
	switch o.Metric {
	case geom.L2, geom.LInf, geom.L1:
	default:
		return fmt.Errorf("core: unknown metric %v", o.Metric)
	}
	switch o.Algorithm {
	case AllPairs, BoundsChecking, IndexBounds:
	default:
		return fmt.Errorf("core: unknown algorithm %v", o.Algorithm)
	}
	switch o.Overlap {
	case JoinAny, Eliminate, FormNewGroup:
	default:
		return fmt.Errorf("core: unknown overlap clause %v", o.Overlap)
	}
	return nil
}

// ErrDimensionMismatch is returned when points of different dimensionality
// are fed to one operator instance.
var ErrDimensionMismatch = errors.New("core: point dimension mismatch")

// ErrNonFiniteCoordinate is returned when a point contains NaN or ±Inf. Such
// coordinates would silently corrupt ε-rectangles and distance predicates
// (NaN compares false against everything), so the operators reject them at
// the door instead of producing wrong groups.
var ErrNonFiniteCoordinate = errors.New("core: non-finite coordinate")

// checkFinite rejects NaN/±Inf coordinates with ErrNonFiniteCoordinate.
func checkFinite(p geom.Point) error {
	for i, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("coordinate %d is %v: %w", i+1, v, ErrNonFiniteCoordinate)
		}
	}
	return nil
}

// Group is one output group, identified by the indexes of its member points
// in input order.
type Group struct {
	// IDs lists the member point indexes, ascending.
	IDs []int
}

// Len reports the group size.
func (g Group) Len() int { return len(g.IDs) }

// Result is the outcome of a grouping run.
type Result struct {
	// Groups holds the output groups, ordered by their smallest member id.
	Groups []Group
	// Dropped lists the point indexes discarded by ON-OVERLAP ELIMINATE,
	// ascending. It is empty for other clauses and for SGB-Any.
	Dropped []int
	// Stats aggregates instrumentation counters for the run.
	Stats Stats
}

// Sizes returns the group cardinalities in output order — the answer shape
// used by the paper's COUNT(*) examples.
func (r *Result) Sizes() []int {
	out := make([]int, len(r.Groups))
	for i, g := range r.Groups {
		out[i] = len(g.IDs)
	}
	return out
}

// Stats collects the cost counters the paper's analysis section reasons
// about. They are measured, not sampled, and are deterministic for a given
// input and option set (modulo JOIN-ANY randomness).
type Stats struct {
	// Points is the number of input points processed.
	Points int
	// DistanceComps counts similarity-predicate evaluations δ(p,q) ≤ ε.
	DistanceComps int64
	// RectTests counts ε-All rectangle containment/overlap tests.
	RectTests int64
	// HullTests counts convex-hull refinement probes (L2 only).
	HullTests int64
	// WindowQueries counts R-tree window queries issued.
	WindowQueries int64
	// IndexUpdates counts R-tree insert/delete operations.
	IndexUpdates int64
	// Rounds is 1 plus the FORM-NEW-GROUP recursion depth (the number of
	// grouping passes over ever-smaller S′ sets).
	Rounds int
	// GroupsMerged counts SGB-Any group merges performed by Union-Find.
	GroupsMerged int64
}

func (s *Stats) add(o Stats) {
	s.Points += o.Points
	s.DistanceComps += o.DistanceComps
	s.RectTests += o.RectTests
	s.HullTests += o.HullTests
	s.WindowQueries += o.WindowQueries
	s.IndexUpdates += o.IndexUpdates
	s.GroupsMerged += o.GroupsMerged
}
