package core

import (
	"math/rand"
	"reflect"
	"testing"

	"sgb/internal/geom"
)

// TestJoinAnyRandSpread: with a seeded Rand, JOIN-ANY actually spreads
// overlapping points across candidate groups rather than always picking the
// first; with nil Rand the choice is deterministic.
func TestJoinAnyRandSpread(t *testing.T) {
	// Two anchor groups, then a stream of bridge points each within ε of
	// both anchors.
	pts := []geom.Point{{0, 0}, {4, 0}}
	for i := 0; i < 40; i++ {
		pts = append(pts, geom.Point{2, float64(i) * 0.001})
	}
	baseOpt := Options{Metric: geom.LInf, Eps: 2.5, Overlap: JoinAny, Algorithm: IndexBounds}

	det1, err := SGBAll(pts, baseOpt)
	if err != nil {
		t.Fatal(err)
	}
	det2, err := SGBAll(pts, baseOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(det1.Groups, det2.Groups) {
		t.Fatal("nil-Rand JOIN-ANY is not deterministic")
	}

	opt := baseOpt
	opt.Rand = rand.New(rand.NewSource(5))
	rnd, err := SGBAll(pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Both anchor groups should have received some bridge points.
	if len(rnd.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(rnd.Groups))
	}
	a, b := len(rnd.Groups[0].IDs), len(rnd.Groups[1].IDs)
	if a < 5 || b < 5 {
		t.Fatalf("randomized arbitration did not spread: sizes %d/%d", a, b)
	}
	// The result is still a valid clique partition.
	cliqueOK(t, pts, rnd, geom.LInf, 2.5)
	partitionOK(t, len(pts), rnd)
}

// TestStreamingMatchesBatch: feeding points through the streaming Add API
// produces the identical result to the batch helpers.
func TestStreamingMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(140))
	pts := randomPoints(r, 400, 2, 10)
	opt := Options{Metric: geom.L2, Eps: 0.9, Overlap: FormNewGroup, Algorithm: IndexBounds}

	batch, err := SGBAll(pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewAllGrouper(opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		id, err := g.Add(p)
		if err != nil {
			t.Fatal(err)
		}
		if id != i {
			t.Fatalf("Add returned id %d for input %d", id, i)
		}
	}
	stream, err := g.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batch, stream) {
		t.Fatal("streaming and batch results differ")
	}
}

// TestStatsMonotonicOverAlgorithms: for the same ELIMINATE input, the
// distance-computation counters must order All-Pairs >= Bounds-Checking >=
// Index (each refinement can only cut work).
func TestStatsMonotonicOverAlgorithms(t *testing.T) {
	r := rand.New(rand.NewSource(141))
	for trial := 0; trial < 5; trial++ {
		pts := randomPoints(r, 400, 2, 6)
		opt := Options{Metric: geom.L2, Eps: 0.5, Overlap: Eliminate}
		var comps [3]int64
		for i, alg := range []Algorithm{AllPairs, BoundsChecking, IndexBounds} {
			opt.Algorithm = alg
			res, err := SGBAll(pts, opt)
			if err != nil {
				t.Fatal(err)
			}
			comps[i] = res.Stats.DistanceComps
		}
		if comps[0] < comps[1] || comps[1] < comps[2] {
			t.Fatalf("distance computations not monotone: AP=%d BC=%d IX=%d",
				comps[0], comps[1], comps[2])
		}
	}
}

// TestFormNewGroupChainRounds pins the round accounting on a known
// structure: groups of near-duplicates with serial bridge points defer one
// batch per round.
func TestFormNewGroupRoundsBounded(t *testing.T) {
	r := rand.New(rand.NewSource(142))
	pts := randomPoints(r, 500, 2, 5)
	res, err := SGBAll(pts, Options{Metric: geom.L2, Eps: 0.8, Overlap: FormNewGroup, Algorithm: IndexBounds})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds < 1 || res.Stats.Rounds > len(pts) {
		t.Fatalf("rounds = %d", res.Stats.Rounds)
	}
	// All deferred points eventually landed somewhere: partition holds.
	partitionOK(t, len(pts), res)
}

// TestAnyParallelWorkerCountIrrelevant: the parallel grouping is identical
// for any worker count, including more workers than cells.
func TestAnyParallelWorkerCountIrrelevant(t *testing.T) {
	r := rand.New(rand.NewSource(143))
	pts := randomPoints(r, 200, 2, 4)
	opt := Options{Metric: geom.L2, Eps: 0.7}
	base, err := SGBAnyParallel(pts, opt, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 7, 64} {
		res, err := SGBAnyParallel(pts, opt, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base.Groups, res.Groups) {
			t.Fatalf("workers=%d changed the grouping", workers)
		}
	}
}

// TestGroupSizesHelper covers Result.Sizes ordering.
func TestGroupSizesHelper(t *testing.T) {
	res := &Result{Groups: []Group{{IDs: []int{0, 2, 4}}, {IDs: []int{1}}, {IDs: []int{3, 5}}}}
	got := res.Sizes()
	want := []int{3, 1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Sizes = %v, want %v", got, want)
	}
}
