package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
)

// FS is the filesystem surface the WAL writes through. Production code uses
// OS (the real filesystem); tests substitute a FaultFS to inject write and
// fsync failures at precise points — the fault-injection harness the crash
// tests are built on.
type FS interface {
	// Create opens name for appending, creating it (and truncating any
	// existing content — the WAL only creates segment names it owns).
	Create(name string) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// ReadDir lists the file names (not paths) in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// Remove deletes name.
	Remove(name string) error
	// Rename atomically replaces newname with oldname's content.
	Rename(oldname, newname string) error
	// Truncate cuts name to size bytes. Replay uses it to discard a torn
	// record tail.
	Truncate(name string, size int64) error
	// SyncDir fsyncs the directory itself, making created/renamed/removed
	// entries durable.
	SyncDir(dir string) error
	// Size reports name's current size in bytes (for the WAL size gauge).
	Size(name string) (int64, error)
}

// File is one open WAL file. Segments are written append-only and read
// sequentially; Sync makes previous writes durable.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
}

// OS is the real-filesystem FS used outside tests.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) Open(name string) (File, error) { return os.Open(name) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) Size(name string) (int64, error) {
	st, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (osFS) Remove(name string) error               { return os.Remove(name) }
func (osFS) Rename(oldname, newname string) error   { return os.Rename(oldname, newname) }
func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// ErrInjected is the failure FaultFS injects.
var ErrInjected = errors.New("wal: injected fault")

// ErrNoSpace is the disk-full failure FailWithENOSPCAfter injects. It wraps
// syscall.ENOSPC so errors.Is(err, syscall.ENOSPC) classifies it exactly the
// way a real full filesystem does.
var ErrNoSpace = fmt.Errorf("wal: injected disk full: %w", syscall.ENOSPC)

// FaultFS wraps another FS and fails the Nth write or fsync call (counted
// across all files opened through it), optionally completing half the buffer
// first — a short write, the torn-record case a real crash produces. It can
// also simulate a disk filling up (FailWithENOSPCAfter: a byte budget after
// which writes fail with ErrNoSpace until RestoreDisk), a failing
// checkpoint-publish rename (FailRenameAt), and a torn segment header on
// rotate (ShortWriteNextSegment). All methods are safe for concurrent use.
type FaultFS struct {
	inner FS

	mu         sync.Mutex
	writes     int
	syncs      int
	renames    int
	failWrite  int  // fail the Nth Write call; 0 = never
	shortWrite bool // when failing a write, write the first half of the buffer
	failSync   int  // fail the Nth Sync call; 0 = never
	syncErr    error
	failRename int   // fail the Nth Rename call; 0 = never
	enospc     int64 // remaining disk-byte budget; negative = unlimited
	shortNext  bool  // tear the first write of the next Created file
}

// NewFaultFS wraps inner with an initially fault-free shim.
func NewFaultFS(inner FS) *FaultFS { return &FaultFS{inner: inner, enospc: -1} }

// FailWriteAt arms the shim to fail the nth subsequent Write call (1 = the
// very next one). When short is set, the failing write first writes half its
// buffer, producing a torn record on disk.
func (f *FaultFS) FailWriteAt(n int, short bool) {
	f.mu.Lock()
	f.failWrite, f.shortWrite = f.writes+n, short
	f.mu.Unlock()
}

// FailSyncAt arms the shim to fail the nth subsequent Sync call.
func (f *FaultFS) FailSyncAt(n int) {
	f.mu.Lock()
	f.failSync = f.syncs + n
	f.syncErr = nil
	f.mu.Unlock()
}

// FailSyncAtErr is FailSyncAt with a caller-chosen error. Pass ErrNoSpace to
// model a delayed-allocation filesystem that only reports a full disk at
// fsync time. n <= 0 disarms the fault ("the disk healed").
func (f *FaultFS) FailSyncAtErr(n int, err error) {
	f.mu.Lock()
	if n <= 0 {
		f.failSync, f.syncErr = 0, nil
	} else {
		f.failSync = f.syncs + n
		f.syncErr = err
	}
	f.mu.Unlock()
}

// FailWithENOSPCAfter arms a simulated full disk: the next n bytes written
// (counted across all files opened through the shim) succeed, after which
// every write fails with ErrNoSpace — first writing whatever still fits,
// exactly like a real filesystem filling up mid-append. The condition is
// sticky until RestoreDisk.
func (f *FaultFS) FailWithENOSPCAfter(n int64) {
	f.mu.Lock()
	f.enospc = n
	f.mu.Unlock()
}

// RestoreDisk clears an armed or tripped ENOSPC condition — the "operator
// freed disk space" event the degraded-mode probe recovers from.
func (f *FaultFS) RestoreDisk() {
	f.mu.Lock()
	f.enospc = -1
	f.mu.Unlock()
}

// DiskFull reports whether the ENOSPC budget is exhausted.
func (f *FaultFS) DiskFull() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.enospc == 0
}

// FailRenameAt arms the shim to fail the nth subsequent Rename call with
// ErrNoSpace — the checkpoint-publish rename on a full disk. One-shot:
// later renames succeed, so a retrying checkpoint recovers.
func (f *FaultFS) FailRenameAt(n int) {
	f.mu.Lock()
	f.failRename = f.renames + n
	f.mu.Unlock()
}

// ShortWriteNextSegment arms a short write on the first Write call of the
// next file Created through the shim: half the buffer lands, then the write
// fails. Against the WAL this tears a fresh segment's header mid-rotate.
func (f *FaultFS) ShortWriteNextSegment() {
	f.mu.Lock()
	f.shortNext = true
	f.mu.Unlock()
}

// Writes reports the total Write calls seen so far.
func (f *FaultFS) Writes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes
}

func (f *FaultFS) Create(name string) (File, error) {
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	ff := &faultFile{File: file, fs: f}
	f.mu.Lock()
	if f.shortNext {
		ff.shortFirst = true
		f.shortNext = false
	}
	f.mu.Unlock()
	return ff, nil
}

func (f *FaultFS) Open(name string) (File, error)       { return f.inner.Open(name) }
func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.inner.ReadDir(dir) }
func (f *FaultFS) Remove(name string) error             { return f.inner.Remove(name) }

func (f *FaultFS) Rename(oldname, newname string) error {
	f.mu.Lock()
	f.renames++
	fail := f.failRename != 0 && f.renames == f.failRename
	f.mu.Unlock()
	if fail {
		return ErrNoSpace
	}
	return f.inner.Rename(oldname, newname)
}

func (f *FaultFS) Truncate(name string, size int64) error { return f.inner.Truncate(name, size) }
func (f *FaultFS) SyncDir(dir string) error               { return f.inner.SyncDir(dir) }
func (f *FaultFS) Size(name string) (int64, error)        { return f.inner.Size(name) }

// checkWrite advances the write counter and reports whether this call must
// fail, and if so whether it should tear (short-write) first.
func (f *FaultFS) checkWrite() (fail, short bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writes++
	return f.failWrite != 0 && f.writes >= f.failWrite, f.shortWrite
}

func (f *FaultFS) checkSync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncs++
	if f.failSync != 0 && f.syncs >= f.failSync {
		if f.syncErr != nil {
			return f.syncErr
		}
		return ErrInjected
	}
	return nil
}

// takeBudget charges n bytes against the ENOSPC budget. It returns how many
// bytes may still be written and whether the full write fits.
func (f *FaultFS) takeBudget(n int) (int, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.enospc < 0 {
		return n, true
	}
	if int64(n) <= f.enospc {
		f.enospc -= int64(n)
		return n, true
	}
	allow := int(f.enospc)
	f.enospc = 0
	return allow, false
}

type faultFile struct {
	File
	fs *FaultFS

	shortFirst bool // tear this file's first write (armed by ShortWriteNextSegment)
}

func (f *faultFile) Write(p []byte) (int, error) {
	if f.takeShortFirst() && len(p) > 1 {
		n, err := f.File.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, ErrInjected
	}
	fail, short := f.fs.checkWrite()
	if fail {
		if short && len(p) > 1 {
			n, err := f.File.Write(p[:len(p)/2])
			if err != nil {
				return n, err
			}
			return n, ErrInjected
		}
		return 0, ErrInjected
	}
	allow, ok := f.fs.takeBudget(len(p))
	if !ok {
		var n int
		if allow > 0 {
			n, _ = f.File.Write(p[:allow])
		}
		return n, ErrNoSpace
	}
	return f.File.Write(p)
}

func (f *faultFile) takeShortFirst() bool {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.shortFirst {
		f.shortFirst = false
		return true
	}
	return false
}

func (f *faultFile) Sync() error {
	if err := f.fs.checkSync(); err != nil {
		return err
	}
	return f.File.Sync()
}
