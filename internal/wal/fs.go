package wal

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// FS is the filesystem surface the WAL writes through. Production code uses
// OS (the real filesystem); tests substitute a FaultFS to inject write and
// fsync failures at precise points — the fault-injection harness the crash
// tests are built on.
type FS interface {
	// Create opens name for appending, creating it (and truncating any
	// existing content — the WAL only creates segment names it owns).
	Create(name string) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// ReadDir lists the file names (not paths) in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// Remove deletes name.
	Remove(name string) error
	// Rename atomically replaces newname with oldname's content.
	Rename(oldname, newname string) error
	// Truncate cuts name to size bytes. Replay uses it to discard a torn
	// record tail.
	Truncate(name string, size int64) error
	// SyncDir fsyncs the directory itself, making created/renamed/removed
	// entries durable.
	SyncDir(dir string) error
	// Size reports name's current size in bytes (for the WAL size gauge).
	Size(name string) (int64, error)
}

// File is one open WAL file. Segments are written append-only and read
// sequentially; Sync makes previous writes durable.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
}

// OS is the real-filesystem FS used outside tests.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) Open(name string) (File, error) { return os.Open(name) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) Size(name string) (int64, error) {
	st, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (osFS) Remove(name string) error               { return os.Remove(name) }
func (osFS) Rename(oldname, newname string) error   { return os.Rename(oldname, newname) }
func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// ErrInjected is the failure FaultFS injects.
var ErrInjected = errors.New("wal: injected fault")

// FaultFS wraps another FS and fails the Nth write or fsync call (counted
// across all files opened through it), optionally completing half the buffer
// first — a short write, the torn-record case a real crash produces. All
// methods are safe for concurrent use.
type FaultFS struct {
	inner FS

	mu         sync.Mutex
	writes     int
	syncs      int
	failWrite  int  // fail the Nth Write call; 0 = never
	shortWrite bool // when failing a write, write the first half of the buffer
	failSync   int  // fail the Nth Sync call; 0 = never
}

// NewFaultFS wraps inner with an initially fault-free shim.
func NewFaultFS(inner FS) *FaultFS { return &FaultFS{inner: inner} }

// FailWriteAt arms the shim to fail the nth subsequent Write call (1 = the
// very next one). When short is set, the failing write first writes half its
// buffer, producing a torn record on disk.
func (f *FaultFS) FailWriteAt(n int, short bool) {
	f.mu.Lock()
	f.failWrite, f.shortWrite = f.writes+n, short
	f.mu.Unlock()
}

// FailSyncAt arms the shim to fail the nth subsequent Sync call.
func (f *FaultFS) FailSyncAt(n int) {
	f.mu.Lock()
	f.failSync = f.syncs + n
	f.mu.Unlock()
}

// Writes reports the total Write calls seen so far.
func (f *FaultFS) Writes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes
}

func (f *FaultFS) Create(name string) (File, error) {
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *FaultFS) Open(name string) (File, error)         { return f.inner.Open(name) }
func (f *FaultFS) ReadDir(dir string) ([]string, error)   { return f.inner.ReadDir(dir) }
func (f *FaultFS) Remove(name string) error               { return f.inner.Remove(name) }
func (f *FaultFS) Rename(oldname, newname string) error   { return f.inner.Rename(oldname, newname) }
func (f *FaultFS) Truncate(name string, size int64) error { return f.inner.Truncate(name, size) }
func (f *FaultFS) SyncDir(dir string) error               { return f.inner.SyncDir(dir) }
func (f *FaultFS) Size(name string) (int64, error)        { return f.inner.Size(name) }

// checkWrite advances the write counter and reports whether this call must
// fail, and if so whether it should tear (short-write) first.
func (f *FaultFS) checkWrite() (fail, short bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writes++
	return f.failWrite != 0 && f.writes >= f.failWrite, f.shortWrite
}

func (f *FaultFS) checkSync() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncs++
	return f.failSync != 0 && f.syncs >= f.failSync
}

type faultFile struct {
	File
	fs *FaultFS
}

func (f *faultFile) Write(p []byte) (int, error) {
	fail, short := f.fs.checkWrite()
	if !fail {
		return f.File.Write(p)
	}
	if short && len(p) > 1 {
		n, err := f.File.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, ErrInjected
	}
	return 0, ErrInjected
}

func (f *faultFile) Sync() error {
	if f.fs.checkSync() {
		return ErrInjected
	}
	return f.File.Sync()
}
