// Package wal is sgbd's write-ahead log: the durability layer under the
// in-memory engine.
//
// The engine applies a committed DML/DDL statement in memory and, before the
// statement is acknowledged to the client, appends one logical record for it
// here. On restart, the server loads the latest checkpoint snapshot and
// replays the log tail; the paper's order-independent SGB semantics
// (arXiv:1412.4303) make statement-level replay deterministic, so the
// recovered database is exactly the acknowledged prefix of history.
//
// # On-disk format
//
// The log is a sequence of segment files named wal-<first-seq>.log, each
// opening with an 8-byte magic. Records are length-prefixed and
// CRC32C-checksummed:
//
//	[4 bytes payload length][4 bytes CRC32C of payload][payload]
//	payload = [8 bytes sequence number][1 byte kind][data]
//
// All integers are big-endian. Sequence numbers start at 1 and increase by
// exactly one per record across segment boundaries; replay treats any gap,
// regression, bad checksum, or short read as the torn tail of the crash and
// truncates the log there (see Replay).
//
// # Fsync policy
//
// SyncAlways fsyncs before Append returns: an acknowledged statement
// survives power loss. SyncInterval fsyncs on a timer: a crash can lose up
// to one interval of acknowledged statements. SyncNever leaves flushing to
// the OS. The first write or fsync failure latches the log into a failed
// state — later appends fail fast with ErrLogFailed, because the durable
// prefix is no longer known.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs every append before it returns.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background timer (Options.Interval).
	SyncInterval
	// SyncNever never fsyncs explicitly; the OS flushes when it pleases.
	SyncNever
)

// ParseSyncPolicy maps the flag spelling onto the enum.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always|interval|never)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// Record kinds. Only statements exist today; the kind byte leaves room for
// replication control records later.
const (
	// KindStatement is one committed SQL DML/DDL statement, data = SQL text.
	KindStatement byte = 1
)

const (
	segMagic   = "SGBWAL01"
	segPrefix  = "wal-"
	segSuffix  = ".log"
	recHdrSize = 8 // u32 length + u32 crc
	// maxRecord bounds a single record so a corrupt length prefix cannot
	// drive a huge allocation during replay.
	maxRecord = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrLogFailed reports an append on a log that has latched a previous write
// or fsync failure: the durable prefix is unknown, so no further statement
// may be acknowledged.
var ErrLogFailed = errors.New("wal: log failed; previous append or fsync error")

// Record is one decoded log record.
type Record struct {
	Seq  uint64
	Kind byte
	Data []byte
}

// Options configures a Log.
type Options struct {
	// Dir is the directory holding the segment files.
	Dir string
	// Policy selects the fsync policy; the zero value is SyncAlways.
	Policy SyncPolicy
	// Interval is the flush period under SyncInterval (default 100ms).
	Interval time.Duration
	// FS is the filesystem to write through; nil means the real one. Tests
	// inject a FaultFS here.
	FS FS
	// OnSync observes the duration of every fsync (for metrics); may be nil.
	OnSync func(time.Duration)
}

// Log is an open write-ahead log positioned for appending. Open creates it;
// all methods are safe for concurrent use.
type Log struct {
	opts Options
	fs   FS

	mu       sync.Mutex
	f        File
	name     string // current segment file name (not path)
	segStart uint64 // first seq the current segment can hold
	seq      uint64 // last assigned sequence number
	written  int64  // bytes fully written to the current segment (no torn tail)
	dirty    bool   // appended since last fsync
	failed   error  // sticky first failure
	closed   bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// Open positions a log for appending after lastSeq, the highest sequence
// number known durable (from Replay). It always starts a fresh segment, so a
// truncated torn tail is never appended over.
func Open(opts Options, lastSeq uint64) (*Log, error) {
	if opts.FS == nil {
		opts.FS = OS
	}
	if opts.Interval <= 0 {
		opts.Interval = 100 * time.Millisecond
	}
	l := &Log{opts: opts, fs: opts.FS, seq: lastSeq, stop: make(chan struct{})}
	if err := l.startSegment(); err != nil {
		return nil, err
	}
	if opts.Policy == SyncInterval {
		l.wg.Add(1)
		go l.flushLoop()
	}
	return l, nil
}

// segName renders the segment file name for a first sequence number.
func segName(firstSeq uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, firstSeq, segSuffix)
}

// segFirstSeq parses a segment file name; ok is false for foreign files.
func segFirstSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	v, err := strconv.ParseUint(name[len(segPrefix):len(name)-len(segSuffix)], 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// segments lists dir's segment files in sequence order.
func segments(fsys FS, dir string) ([]string, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	segs := names[:0]
	for _, n := range names {
		if _, ok := segFirstSeq(n); ok {
			segs = append(segs, n)
		}
	}
	sort.Slice(segs, func(i, j int) bool {
		a, _ := segFirstSeq(segs[i])
		b, _ := segFirstSeq(segs[j])
		return a < b
	})
	return segs, nil
}

// startSegment opens a fresh segment for seq+1 and makes its directory entry
// durable. Caller holds l.mu or has exclusive access.
func (l *Log) startSegment() error {
	name := segName(l.seq + 1)
	f, err := l.fs.Create(filepath.Join(l.opts.Dir, name))
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return err
	}
	if l.opts.Policy == SyncAlways {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if err := l.fs.SyncDir(l.opts.Dir); err != nil {
		f.Close()
		return err
	}
	l.f, l.name, l.segStart = f, name, l.seq+1
	l.written = int64(len(segMagic))
	return nil
}

// Append writes one record and, under SyncAlways, makes it durable before
// returning. The returned sequence number identifies the record in replay.
func (l *Log) Append(kind byte, data []byte) (uint64, error) {
	seq, _, err := l.AppendSynced(kind, data)
	return seq, err
}

// AppendSynced is Append reporting how long the record's fsync took (zero
// when the policy does not fsync inline). The serving layer records the
// duration as a wal_fsync span on the committing query's trace, attributing
// durability cost to the statement that paid it.
func (l *Log) AppendSynced(kind byte, data []byte) (uint64, time.Duration, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, 0, errors.New("wal: log closed")
	}
	if l.failed != nil {
		return 0, 0, fmt.Errorf("%w: %w", ErrLogFailed, l.failed)
	}
	seq := l.seq + 1
	payload := make([]byte, 0, 9+len(data))
	payload = binary.BigEndian.AppendUint64(payload, seq)
	payload = append(payload, kind)
	payload = append(payload, data...)

	rec := make([]byte, recHdrSize, recHdrSize+len(payload))
	binary.BigEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(rec[4:8], crc32.Checksum(payload, castagnoli))
	rec = append(rec, payload...)

	if _, err := l.f.Write(rec); err != nil {
		// The write may have landed partially; l.written still marks the end
		// of the last intact record so Recover can cut the torn tail.
		l.failed = err
		return 0, 0, fmt.Errorf("wal: append: %w", err)
	}
	l.seq = seq
	l.written += int64(len(rec))
	l.dirty = true
	var syncDur time.Duration
	if l.opts.Policy == SyncAlways {
		start := time.Now()
		if err := l.syncLocked(); err != nil {
			return 0, 0, fmt.Errorf("wal: fsync: %w", err)
		}
		syncDur = time.Since(start)
	}
	return seq, syncDur, nil
}

// syncLocked fsyncs the current segment; caller holds l.mu.
func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		l.failed = err
		return err
	}
	l.dirty = false
	if l.opts.OnSync != nil {
		l.opts.OnSync(time.Since(start))
	}
	return nil
}

// Sync forces an fsync of everything appended so far.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.failed != nil {
		return l.failed
	}
	return l.syncLocked()
}

// LastSeq reports the sequence number of the most recent append (0 before
// the first). Under SyncAlways every reported record is durable.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Failed reports the sticky failure, if the log has latched one.
func (l *Log) Failed() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// Rotate closes the current segment and starts a new one. The checkpointer
// calls it after writing a snapshot so TrimBefore can release the old
// segments.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log closed")
	}
	if l.failed != nil {
		return fmt.Errorf("%w: %w", ErrLogFailed, l.failed)
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		l.failed = err
		return err
	}
	if err := l.startSegment(); err != nil {
		// A half-created next segment is a disk fault like any other: latch
		// it so appends fail fast and Recover can repair the log.
		l.failed = err
		return err
	}
	return nil
}

// Recover clears a latched write or fsync failure by repairing the log in
// place: it truncates the current segment back to the end of its last fully
// written record (cutting any torn tail the failing write left) and starts a
// fresh segment. Both steps do real disk I/O, so Recover fails — and the log
// stays failed — while the underlying fault (e.g. a full disk) persists. The
// degraded-mode probe calls this; on success the caller must re-checkpoint
// before acknowledging new writes, because records appended after the last
// successful fsync were never confirmed durable.
func (l *Log) Recover() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log closed")
	}
	if l.failed == nil {
		return nil
	}
	if l.f != nil {
		_ = l.f.Close()
	}
	if err := l.fs.Truncate(filepath.Join(l.opts.Dir, l.name), l.written); err != nil {
		return fmt.Errorf("wal: recover truncate: %w", err)
	}
	prev := l.failed
	l.failed = nil
	l.dirty = false
	if err := l.startSegment(); err != nil {
		l.failed = prev
		return fmt.Errorf("wal: recover: %w", err)
	}
	return nil
}

// TrimBefore removes whole segments whose every record is covered by a
// checkpoint at seq (i.e. all records <= seq). The current segment is never
// removed. It returns the number of segments deleted.
func (l *Log) TrimBefore(seq uint64) (int, error) {
	l.mu.Lock()
	cur := l.name
	l.mu.Unlock()

	segs, err := segments(l.fs, l.opts.Dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for i, name := range segs {
		if name == cur || i+1 >= len(segs) {
			break
		}
		// The segment's records all precede the next segment's first seq.
		next, _ := segFirstSeq(segs[i+1])
		if next > seq+1 {
			break
		}
		if err := l.fs.Remove(filepath.Join(l.opts.Dir, name)); err != nil {
			return removed, err
		}
		removed++
	}
	if removed > 0 {
		if err := l.fs.SyncDir(l.opts.Dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// SegmentCount reports how many segment files the directory currently holds.
func (l *Log) SegmentCount() (int, error) {
	segs, err := segments(l.fs, l.opts.Dir)
	return len(segs), err
}

// SizeBytes reports the total on-disk size of all segment files — the
// wal_size_bytes gauge the server exports. Segments that vanish mid-listing
// (a concurrent TrimBefore) are skipped, not errors.
func (l *Log) SizeBytes() (int64, error) {
	segs, err := segments(l.fs, l.opts.Dir)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, name := range segs {
		n, err := l.fs.Size(filepath.Join(l.opts.Dir, name))
		if err != nil {
			continue
		}
		total += n
	}
	return total, nil
}

// flushLoop is the SyncInterval background flusher.
func (l *Log) flushLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = l.Sync()
		case <-l.stop:
			return
		}
	}
}

// Close fsyncs and closes the log. Further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.stop)
	l.wg.Wait()

	l.mu.Lock()
	defer l.mu.Unlock()
	var err error
	if l.failed == nil {
		err = l.syncLocked()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}
