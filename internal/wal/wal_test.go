package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// replayAll replays dir from scratch and returns the collected records.
func replayAll(t *testing.T, fsys FS, dir string) ([]Record, ReplayStats) {
	t.Helper()
	var recs []Record
	st, err := Replay(fsys, dir, 0, func(r Record) error {
		cp := r
		cp.Data = append([]byte(nil), r.Data...)
		recs = append(recs, cp)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs, st
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"CREATE TABLE t (x INT)", "INSERT INTO t VALUES (1)", "INSERT INTO t VALUES (2)"}
	for i, sql := range want {
		seq, err := l.Append(KindStatement, []byte(sql))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d: seq %d", i, seq)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	recs, st := replayAll(t, nil, dir)
	if st.LastSeq != 3 || st.Applied != 3 || st.Truncated {
		t.Fatalf("stats %+v", st)
	}
	for i, r := range recs {
		if string(r.Data) != want[i] || r.Kind != KindStatement || r.Seq != uint64(i+1) {
			t.Fatalf("record %d: %+v", i, r)
		}
	}

	// Re-open after the durable prefix and keep appending; replay sees both.
	l2, err := Open(Options{Dir: dir}, st.LastSeq)
	if err != nil {
		t.Fatal(err)
	}
	if seq, err := l2.Append(KindStatement, []byte("fourth")); err != nil || seq != 4 {
		t.Fatalf("append after reopen: seq %d err %v", seq, err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, st = replayAll(t, nil, dir)
	if len(recs) != 4 || st.LastSeq != 4 {
		t.Fatalf("after reopen: %d records, stats %+v", len(recs), st)
	}
}

func TestReplayAfterSeqSkips(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append(KindStatement, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	var recs []Record
	st, err := Replay(nil, dir, 3, func(r Record) error { recs = append(recs, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.Skipped != 3 || st.Applied != 2 || len(recs) != 2 || recs[0].Seq != 4 {
		t.Fatalf("stats %+v recs %+v", st, recs)
	}
}

// TestTornTailTruncated cuts the final record mid-payload — what a crash
// during an append leaves behind — and verifies replay recovers the valid
// prefix, truncates the tear, and the log accepts new appends afterwards.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(KindStatement, []byte(fmt.Sprintf("stmt-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	segs, err := segments(OS, dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments %v err %v", segs, err)
	}
	path := filepath.Join(dir, segs[0])
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear 3 bytes off the last record.
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	recs, st := replayAll(t, nil, dir)
	if len(recs) != 2 || !st.Truncated || st.LastSeq != 2 {
		t.Fatalf("after tear: %d records, stats %+v", len(recs), st)
	}
	// Idempotent: a second replay sees the same clean prefix, no more tears.
	recs, st = replayAll(t, nil, dir)
	if len(recs) != 2 || st.Truncated {
		t.Fatalf("second replay: %d records, stats %+v", len(recs), st)
	}

	// The log must append cleanly after recovery.
	l2, err := Open(Options{Dir: dir}, st.LastSeq)
	if err != nil {
		t.Fatal(err)
	}
	if seq, err := l2.Append(KindStatement, []byte("recovered")); err != nil || seq != 3 {
		t.Fatalf("append after recovery: seq %d err %v", seq, err)
	}
	l2.Close()
	recs, _ = replayAll(t, nil, dir)
	if len(recs) != 3 || string(recs[2].Data) != "recovered" {
		t.Fatalf("final replay: %+v", recs)
	}
}

// TestCorruptRecordDropsLaterSegments flips a payload byte in the first of
// two segments: replay must stop at the corruption and remove the now
// unreachable second segment.
func TestCorruptRecordDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(KindStatement, []byte(fmt.Sprintf("seg1-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(KindStatement, []byte("seg2-0")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Open created seg1, Rotate created seg2; Close does not rotate.
	segs, _ := segments(OS, dir)
	if len(segs) != 2 {
		t.Fatalf("segments: %v", segs)
	}
	// Corrupt the last byte of the first segment (inside record 3's payload).
	path := filepath.Join(dir, segs[0])
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, st := replayAll(t, nil, dir)
	if len(recs) != 2 || !st.Truncated || st.SegmentsRemoved == 0 {
		t.Fatalf("after corruption: %d records, stats %+v", len(recs), st)
	}
	if segs, _ := segments(OS, dir); len(segs) != 1 {
		t.Fatalf("later segments not removed: %v", segs)
	}
}

// TestReplayValidatesSegmentName: a segment whose records do not start at
// the sequence its file name promises is damaged, even when the records are
// internally consistent — the first record of the scan must be validated
// too, or a renumbered/foreign log is silently applied or skipped.
func TestReplayValidatesSegmentName(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(KindStatement, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Records 1..3 now live in a segment claiming to start at 2; afterSeq 1
	// keeps the rename clear of the missing-prefix check, so only the
	// name-vs-record validation can catch it.
	if err := os.Rename(filepath.Join(dir, segName(1)), filepath.Join(dir, segName(2))); err != nil {
		t.Fatal(err)
	}
	st, err := Replay(nil, dir, 1, func(Record) error {
		t.Fatal("record applied from a mismatched segment")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Truncated || st.Applied != 0 || st.LastSeq != 0 {
		t.Fatalf("mismatched segment not truncated: %+v", st)
	}
}

// TestReplaySegmentNameGapDropsTail: a sequence break at a segment boundary
// (the second segment's name does not continue the first's records) makes
// the tail unreachable; replay must drop it rather than apply records out of
// order.
func TestReplaySegmentNameGapDropsTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(KindStatement, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(KindStatement, []byte("tail")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Damage: the second segment (records from 4) claims to start at 6.
	if err := os.Rename(filepath.Join(dir, segName(4)), filepath.Join(dir, segName(6))); err != nil {
		t.Fatal(err)
	}
	recs, st := replayAll(t, nil, dir)
	if len(recs) != 3 || !st.Truncated || st.SegmentsRemoved != 1 || st.LastSeq != 3 {
		t.Fatalf("after boundary gap: %d records, stats %+v", len(recs), st)
	}
	if segs, _ := segments(OS, dir); len(segs) != 1 {
		t.Fatalf("unreachable segment not removed: %v", segs)
	}
}

// TestReplayMissingPrefixErrors: when the oldest surviving segment starts
// past afterSeq+1, acknowledged records between the checkpoint and the log
// head are gone; replay must refuse rather than skip them silently.
func TestReplayMissingPrefixErrors(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(KindStatement, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(KindStatement, []byte("tail")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Lose the first segment (records 1..3) with no checkpoint covering it.
	if err := os.Remove(filepath.Join(dir, segName(1))); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(nil, dir, 0, func(Record) error { return nil }); err == nil {
		t.Fatal("replay with a missing covered segment succeeded; want error")
	}
	// With a checkpoint covering the lost records, recovery proceeds.
	st, err := Replay(nil, dir, 3, func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied != 1 || st.LastSeq != 4 {
		t.Fatalf("replay past checkpoint: %+v", st)
	}
}

func TestRotateAndTrim(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := l.Append(KindStatement, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(KindStatement, []byte("after")); err != nil {
		t.Fatal(err)
	}
	// Records 1..4 are covered by a checkpoint at seq 4: the first segment
	// can go, the active one must stay.
	n, err := l.TrimBefore(4)
	if err != nil || n != 1 {
		t.Fatalf("trim: n=%d err=%v", n, err)
	}
	var recs []Record
	st, err := Replay(nil, dir, 4, func(r Record) error { recs = append(recs, r); return nil })
	if err != nil {
		t.Fatalf("replay after trim: %v", err)
	}
	if len(recs) != 1 || recs[0].Seq != 5 || st.LastSeq != 5 {
		t.Fatalf("after trim: recs %+v stats %+v", recs, st)
	}
	// Replaying a trimmed log without its checkpoint is refused: the trimmed
	// records cannot be silently skipped.
	if _, err := Replay(nil, dir, 0, func(Record) error { return nil }); err == nil {
		t.Fatal("replay from 0 on a trimmed log succeeded; want missing-records error")
	}
	// Trimming at a seq that does not cover the active segment is a no-op.
	if n, err := l.TrimBefore(100); err != nil || n != 0 {
		t.Fatalf("trim active: n=%d err=%v", n, err)
	}
	l.Close()
}

// TestFaultInjectionWrite arms the shim to fail (and tear) the write of the
// third record: the append must error, the log must latch failed, and replay
// must recover exactly the two durable records.
func TestFaultInjectionWrite(t *testing.T) {
	for _, short := range []bool{false, true} {
		t.Run(fmt.Sprintf("short=%v", short), func(t *testing.T) {
			dir := t.TempDir()
			ffs := NewFaultFS(OS)
			l, err := Open(Options{Dir: dir, FS: ffs}, 0)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 2; i++ {
				if _, err := l.Append(KindStatement, []byte(fmt.Sprintf("ok-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			ffs.FailWriteAt(1, short)
			if _, err := l.Append(KindStatement, []byte("lost")); !errors.Is(err, ErrInjected) {
				t.Fatalf("injected append: %v", err)
			}
			// The failure latches: later appends fail fast with ErrLogFailed.
			if _, err := l.Append(KindStatement, []byte("refused")); !errors.Is(err, ErrLogFailed) {
				t.Fatalf("append after failure: %v", err)
			}
			if l.Failed() == nil {
				t.Fatal("Failed() not latched")
			}
			l.Close()

			recs, st := replayAll(t, nil, dir)
			if len(recs) != 2 || st.LastSeq != 2 {
				t.Fatalf("recovered %d records, stats %+v", len(recs), st)
			}
			if short && !st.Truncated {
				t.Fatal("short write left no tear to truncate")
			}
		})
	}
}

// TestFaultInjectionSync fails the fsync of an append under SyncAlways: the
// statement must not be acknowledged and the log must latch.
func TestFaultInjectionSync(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	l, err := Open(Options{Dir: dir, FS: ffs, Policy: SyncAlways}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(KindStatement, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	ffs.FailSyncAt(1)
	if _, err := l.Append(KindStatement, []byte("unsynced")); !errors.Is(err, ErrInjected) {
		t.Fatalf("injected sync: %v", err)
	}
	if _, err := l.Append(KindStatement, []byte("refused")); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("append after sync failure: %v", err)
	}
	l.Close()
}

func TestSyncPolicies(t *testing.T) {
	var syncs int
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Policy: SyncAlways, OnSync: func(time.Duration) { syncs++ }}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(KindStatement, nil); err != nil {
			t.Fatal(err)
		}
	}
	if syncs != 3 {
		t.Fatalf("SyncAlways: %d syncs for 3 appends", syncs)
	}
	l.Close()

	// SyncInterval flushes in the background within a few periods.
	syncCh := make(chan struct{}, 16)
	l2, err := Open(Options{
		Dir: t.TempDir(), Policy: SyncInterval, Interval: 5 * time.Millisecond,
		OnSync: func(time.Duration) { syncCh <- struct{}{} },
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Append(KindStatement, []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-syncCh:
	case <-time.After(2 * time.Second):
		t.Fatal("SyncInterval never flushed")
	}
	l2.Close()
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"always", SyncAlways, true},
		{"interval", SyncInterval, true},
		{"never", SyncNever, true},
		{"sometimes", 0, false},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if tc.ok && got.String() != tc.in {
			t.Errorf("String() = %q, want %q", got.String(), tc.in)
		}
	}
}

// TestReplayCallbackError pins that an apply failure aborts replay with a
// typed error and leaves the log intact.
func TestReplayCallbackError(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(Options{Dir: dir}, 0)
	for i := 0; i < 3; i++ {
		l.Append(KindStatement, []byte{byte(i)})
	}
	l.Close()
	boom := errors.New("boom")
	_, err := Replay(nil, dir, 0, func(r Record) error {
		if r.Seq == 2 {
			return boom
		}
		return nil
	})
	var re *ReplayError
	if !errors.As(err, &re) || re.Seq != 2 || !errors.Is(err, boom) {
		t.Fatalf("replay error: %v", err)
	}
	// Log untouched: a full replay still sees all three records.
	recs, _ := replayAll(t, nil, dir)
	if len(recs) != 3 {
		t.Fatalf("log damaged by callback error: %d records", len(recs))
	}
}
