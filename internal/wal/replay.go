package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
)

// ReplayStats reports what a Replay pass found and repaired.
type ReplayStats struct {
	// LastSeq is the highest valid sequence number in the log (0 if empty).
	LastSeq uint64
	// Applied counts records handed to the callback (seq > afterSeq).
	Applied int
	// Skipped counts valid records already covered by the checkpoint.
	Skipped int
	// Truncated is set when a torn or corrupt record was found; the segment
	// was cut at the corruption point.
	Truncated bool
	// SegmentsRemoved counts segments dropped because they followed a
	// corruption point (their records are unreachable once the sequence
	// breaks).
	SegmentsRemoved int
}

// ReplayError wraps a callback failure with the record that caused it.
type ReplayError struct {
	Seq uint64
	Err error
}

func (e *ReplayError) Error() string {
	return fmt.Sprintf("wal: replaying record %d: %v", e.Seq, e.Err)
}

func (e *ReplayError) Unwrap() error { return e.Err }

// Replay scans the log in dir in sequence order, invoking fn for every valid
// record with Seq > afterSeq (records at or below afterSeq are covered by the
// checkpoint and skipped). fsys nil means the real filesystem.
//
// Crash consistency: the first torn or corrupt record — short frame, bad
// CRC32C, oversized length, or a sequence-number break — is treated as the
// unfinished append of the crash. The segment is truncated at that record's
// start offset, any later segments are removed, and replay stops cleanly.
// Replay is idempotent: running it again yields the same prefix.
//
// Continuity is validated against the segment file names, not just within
// the scan: each segment's first record must carry the sequence number
// encoded in its name, records advance by exactly one across segment
// boundaries, and the oldest segment must not start past afterSeq+1 — a log
// whose surviving head already post-dates the checkpoint's coverage has lost
// acknowledged records, which is an error, never a silent skip.
//
// A callback error aborts replay immediately with a *ReplayError; the log is
// left untouched, since the record itself was valid.
func Replay(fsys FS, dir string, afterSeq uint64, fn func(Record) error) (ReplayStats, error) {
	if fsys == nil {
		fsys = OS
	}
	var st ReplayStats
	segs, err := segments(fsys, dir)
	if err != nil {
		return st, err
	}
	// expect is the sequence the next segment's name must carry; 0 until the
	// first segment establishes it.
	var expect uint64
	for i, name := range segs {
		first, _ := segFirstSeq(name)
		if expect == 0 && first > afterSeq+1 {
			// The oldest surviving segment starts past what the checkpoint
			// covers: records afterSeq+1..first-1 are gone. That is not a
			// torn tail — refuse to recover rather than lose them silently.
			return st, fmt.Errorf("wal: oldest segment %s starts at seq %d but the checkpoint covers only seq %d: records %d..%d are missing",
				name, first, afterSeq, afterSeq+1, first-1)
		}
		if expect != 0 && first != expect {
			// The sequence breaks at a segment boundary: this segment and
			// everything after it cannot be applied consistently.
			st.Truncated = true
			for _, later := range segs[i:] {
				if err := fsys.Remove(filepath.Join(dir, later)); err != nil {
					return st, err
				}
				st.SegmentsRemoved++
			}
			if err := fsys.SyncDir(dir); err != nil {
				return st, err
			}
			break
		}
		path := filepath.Join(dir, name)
		truncAt, err := replaySegment(fsys, path, first, afterSeq, &st, fn)
		if err != nil {
			return st, err
		}
		if truncAt >= 0 {
			st.Truncated = true
			if err := fsys.Truncate(path, truncAt); err != nil {
				return st, fmt.Errorf("wal: truncating torn tail of %s: %w", name, err)
			}
			// Records after a break in the sequence cannot be applied
			// consistently; drop the unreachable segments.
			for _, later := range segs[i+1:] {
				if err := fsys.Remove(filepath.Join(dir, later)); err != nil {
					return st, err
				}
				st.SegmentsRemoved++
			}
			if err := fsys.SyncDir(dir); err != nil {
				return st, err
			}
			break
		}
		if st.LastSeq >= first {
			expect = st.LastSeq + 1
		} else {
			expect = first // empty segment: its promised first seq is still owed
		}
	}
	return st, nil
}

// replaySegment scans one segment whose file name promises firstSeq as its
// first record. It returns truncAt >= 0 when the segment must be cut at that
// byte offset (torn/corrupt record), -1 when the segment is clean. Callback
// errors surface as err.
func replaySegment(fsys FS, path string, firstSeq, afterSeq uint64, st *ReplayStats, fn func(Record) error) (truncAt int64, err error) {
	f, err := fsys.Open(path)
	if err != nil {
		return -1, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)

	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != segMagic {
		// Header never made it to disk (or is garbage): the whole segment is
		// the torn tail.
		return 0, nil
	}
	off := int64(len(segMagic))

	hdr := make([]byte, recHdrSize)
	expect := firstSeq
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			if err == io.EOF {
				return -1, nil // clean end of segment
			}
			return off, nil // torn mid-header
		}
		n := binary.BigEndian.Uint32(hdr[0:4])
		wantCRC := binary.BigEndian.Uint32(hdr[4:8])
		if n < 9 || n > maxRecord {
			return off, nil // corrupt length
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return off, nil // torn mid-payload
		}
		if crc32.Checksum(payload, castagnoli) != wantCRC {
			return off, nil // corrupt payload
		}
		rec := Record{
			Seq:  binary.BigEndian.Uint64(payload[0:8]),
			Kind: payload[8],
			Data: payload[9:],
		}
		// The segment's name encodes its first sequence number and the
		// sequence advances by exactly one per record, so every record's seq
		// is known in advance; anything else means the log was damaged here.
		if rec.Seq != expect {
			return off, nil
		}
		st.LastSeq = rec.Seq
		expect = rec.Seq + 1
		off += recHdrSize + int64(n)
		if rec.Seq <= afterSeq {
			st.Skipped++
			continue
		}
		if err := fn(rec); err != nil {
			return -1, &ReplayError{Seq: rec.Seq, Err: err}
		}
		st.Applied++
	}
}
