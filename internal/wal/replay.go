package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
)

// ReplayStats reports what a Replay pass found and repaired.
type ReplayStats struct {
	// LastSeq is the highest valid sequence number in the log (0 if empty).
	LastSeq uint64
	// Applied counts records handed to the callback (seq > afterSeq).
	Applied int
	// Skipped counts valid records already covered by the checkpoint.
	Skipped int
	// Truncated is set when a torn or corrupt record was found; the segment
	// was cut at the corruption point.
	Truncated bool
	// SegmentsRemoved counts segments dropped because they followed a
	// corruption point (their records are unreachable once the sequence
	// breaks).
	SegmentsRemoved int
}

// ReplayError wraps a callback failure with the record that caused it.
type ReplayError struct {
	Seq uint64
	Err error
}

func (e *ReplayError) Error() string {
	return fmt.Sprintf("wal: replaying record %d: %v", e.Seq, e.Err)
}

func (e *ReplayError) Unwrap() error { return e.Err }

// Replay scans the log in dir in sequence order, invoking fn for every valid
// record with Seq > afterSeq (records at or below afterSeq are covered by the
// checkpoint and skipped). fsys nil means the real filesystem.
//
// Crash consistency: the first torn or corrupt record — short frame, bad
// CRC32C, oversized length, or a sequence-number break — is treated as the
// unfinished append of the crash. The segment is truncated at that record's
// start offset, any later segments are removed, and replay stops cleanly.
// Replay is idempotent: running it again yields the same prefix.
//
// A callback error aborts replay immediately with a *ReplayError; the log is
// left untouched, since the record itself was valid.
func Replay(fsys FS, dir string, afterSeq uint64, fn func(Record) error) (ReplayStats, error) {
	if fsys == nil {
		fsys = OS
	}
	var st ReplayStats
	segs, err := segments(fsys, dir)
	if err != nil {
		return st, err
	}
	for i, name := range segs {
		path := filepath.Join(dir, name)
		truncAt, err := replaySegment(fsys, path, afterSeq, &st, fn)
		if err != nil {
			return st, err
		}
		if truncAt >= 0 {
			st.Truncated = true
			if err := fsys.Truncate(path, truncAt); err != nil {
				return st, fmt.Errorf("wal: truncating torn tail of %s: %w", name, err)
			}
			// Records after a break in the sequence cannot be applied
			// consistently; drop the unreachable segments.
			for _, later := range segs[i+1:] {
				if err := fsys.Remove(filepath.Join(dir, later)); err != nil {
					return st, err
				}
				st.SegmentsRemoved++
			}
			if err := fsys.SyncDir(dir); err != nil {
				return st, err
			}
			break
		}
	}
	return st, nil
}

// replaySegment scans one segment. It returns truncAt >= 0 when the segment
// must be cut at that byte offset (torn/corrupt record), -1 when the segment
// is clean. Callback errors surface as err.
func replaySegment(fsys FS, path string, afterSeq uint64, st *ReplayStats, fn func(Record) error) (truncAt int64, err error) {
	f, err := fsys.Open(path)
	if err != nil {
		return -1, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)

	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != segMagic {
		// Header never made it to disk (or is garbage): the whole segment is
		// the torn tail.
		return 0, nil
	}
	off := int64(len(segMagic))

	hdr := make([]byte, recHdrSize)
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			if err == io.EOF {
				return -1, nil // clean end of segment
			}
			return off, nil // torn mid-header
		}
		n := binary.BigEndian.Uint32(hdr[0:4])
		wantCRC := binary.BigEndian.Uint32(hdr[4:8])
		if n < 9 || n > maxRecord {
			return off, nil // corrupt length
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return off, nil // torn mid-payload
		}
		if crc32.Checksum(payload, castagnoli) != wantCRC {
			return off, nil // corrupt payload
		}
		rec := Record{
			Seq:  binary.BigEndian.Uint64(payload[0:8]),
			Kind: payload[8],
			Data: payload[9:],
		}
		// Sequence must advance by exactly one record at a time; anything
		// else means the log was damaged here.
		if st.LastSeq != 0 && rec.Seq != st.LastSeq+1 {
			return off, nil
		}
		st.LastSeq = rec.Seq
		off += recHdrSize + int64(n)
		if rec.Seq <= afterSeq {
			st.Skipped++
			continue
		}
		if err := fn(rec); err != nil {
			return -1, &ReplayError{Seq: rec.Seq, Err: err}
		}
		st.Applied++
	}
}
