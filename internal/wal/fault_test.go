package wal

import (
	"errors"
	"fmt"
	"syscall"
	"testing"
)

// TestENOSPCDuringAppend exhausts the injected disk budget mid-append: the
// failing append reports ENOSPC, the log latches, and after RestoreDisk a
// Recover truncates the torn tail so replay sees exactly the acknowledged
// prefix plus post-recovery appends.
func TestENOSPCDuringAppend(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	l, err := Open(Options{Dir: dir, FS: ffs}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var acked []uint64
	for i := 0; i < 3; i++ {
		seq, _, err := l.AppendSynced(KindStatement, []byte(fmt.Sprintf("ok-%d", i)))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		acked = append(acked, seq)
	}

	// 10 more bytes of disk, then full: the next record (far larger) tears.
	ffs.FailWithENOSPCAfter(10)
	_, _, err = l.AppendSynced(KindStatement, []byte("this record does not fit on the full disk"))
	if !errors.Is(err, ErrNoSpace) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append on full disk: %v, want ErrNoSpace wrapping ENOSPC", err)
	}
	if l.Failed() == nil {
		t.Fatal("log did not latch after ENOSPC")
	}
	// Still full: appends fail fast, Recover fails, latch stays.
	if _, _, err := l.AppendSynced(KindStatement, []byte("x")); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("append while latched: %v, want ErrLogFailed", err)
	}
	if err := l.Recover(); err == nil {
		t.Fatal("Recover succeeded on a still-full disk")
	}
	if l.Failed() == nil {
		t.Fatal("failed Recover cleared the latch")
	}

	// Disk freed: Recover truncates the torn tail and appends flow again.
	ffs.RestoreDisk()
	if err := l.Recover(); err != nil {
		t.Fatalf("Recover after RestoreDisk: %v", err)
	}
	if l.Failed() != nil {
		t.Fatalf("latch survived Recover: %v", l.Failed())
	}
	seq, _, err := l.AppendSynced(KindStatement, []byte("post-recovery"))
	if err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	l.Close()

	recs, st := replayAll(t, nil, dir)
	if st.LastSeq != seq {
		t.Fatalf("replay LastSeq %d, want %d", st.LastSeq, seq)
	}
	want := len(acked) + 1
	if len(recs) != want {
		t.Fatalf("replayed %d records, want %d (acked prefix + post-recovery)", len(recs), want)
	}
	if string(recs[len(recs)-1].Data) != "post-recovery" {
		t.Fatalf("last record %q", recs[len(recs)-1].Data)
	}
}

// TestENOSPCDuringFsync fails the fsync (the write itself lands): the commit
// must NOT be acknowledged — the log latches — but the fully-written record
// stays in the log after Recover, matching the engine's in-memory state
// (applied-but-unacknowledged; the post-promotion checkpoint makes it
// durable for real).
func TestENOSPCDuringFsync(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	l, err := Open(Options{Dir: dir, FS: ffs}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	if _, _, err := l.AppendSynced(KindStatement, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	// Fail the next fsync — the one the next append pays inline.
	ffs.FailSyncAtErr(1, ErrNoSpace)
	_, _, err = l.AppendSynced(KindStatement, []byte("written-not-synced"))
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("append with failing fsync: %v, want ErrNoSpace", err)
	}
	if l.Failed() == nil {
		t.Fatal("log did not latch after fsync failure")
	}

	ffs.FailSyncAtErr(0, nil) // heal the disk
	if err := l.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	seq, _, err := l.AppendSynced(KindStatement, []byte("after"))
	if err != nil {
		t.Fatalf("append after Recover: %v", err)
	}
	l.Close()

	recs, st := replayAll(t, nil, dir)
	if st.LastSeq != seq || len(recs) != 3 {
		t.Fatalf("replayed %d records (LastSeq %d), want 3 through %d — the fully-written record must survive Recover to match in-memory state", len(recs), st.LastSeq, seq)
	}
	if string(recs[1].Data) != "written-not-synced" {
		t.Fatalf("record 2 is %q, want the written-not-synced record", recs[1].Data)
	}
}

// TestShortWriteOnRotate tears the new segment's header mid-rotate: Rotate
// must latch the log, and Recover must restore append service. Replay of the
// final state sees every acknowledged record.
func TestShortWriteOnRotate(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	l, err := Open(Options{Dir: dir, FS: ffs}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	for i := 0; i < 2; i++ {
		if _, _, err := l.AppendSynced(KindStatement, []byte(fmt.Sprintf("seg1-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ffs.ShortWriteNextSegment()
	if err := l.Rotate(); err == nil {
		t.Fatal("Rotate with torn segment header succeeded")
	}
	if l.Failed() == nil {
		t.Fatal("log did not latch after rotate fault")
	}
	if err := l.Recover(); err != nil {
		t.Fatalf("Recover after rotate fault: %v", err)
	}
	seq, _, err := l.AppendSynced(KindStatement, []byte("seg2"))
	if err != nil {
		t.Fatalf("append after recovered rotate: %v", err)
	}
	l.Close()

	recs, st := replayAll(t, nil, dir)
	if st.LastSeq != seq || len(recs) != 3 {
		t.Fatalf("replayed %d records (LastSeq %d), want 3 through seq %d", len(recs), st.LastSeq, seq)
	}
}

// TestRecoverNoopWhenHealthy: Recover on an unlatched log is a no-op.
func TestRecoverNoopWhenHealthy(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, _, err := l.AppendSynced(KindStatement, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := l.Recover(); err != nil {
		t.Fatalf("Recover on healthy log: %v", err)
	}
	if _, _, err := l.AppendSynced(KindStatement, []byte("b")); err != nil {
		t.Fatalf("append after no-op Recover: %v", err)
	}
}

// TestRenameFault drives the checkpoint-style rename path: the Nth rename
// fails with ENOSPC, later renames succeed.
func TestRenameFault(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	f, err := ffs.Create(dir + "/a.tmp")
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	ffs.FailRenameAt(1)
	if err := ffs.Rename(dir+"/a.tmp", dir+"/a"); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("injected rename fault: %v, want ErrNoSpace", err)
	}
	if err := ffs.Rename(dir+"/a.tmp", dir+"/a"); err != nil {
		t.Fatalf("rename after fault: %v", err)
	}
}
