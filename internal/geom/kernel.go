package geom

import "math"

// This file is the columnar (structure-of-arrays) side of the package: a
// point set stored as one flat []float64 per dimension, plus batch distance
// kernels that evaluate the similarity predicate over a whole column slab in
// one call. The kernels are written as branch-light, bounds-check-hoisted
// loops over the coordinate columns so the compiler can keep them in
// registers and auto-vectorize them; all comparisons are performed on
// comparable distances (squared under L2 — no square root on the hot path).
//
// Verdict compatibility: for every row i, WithinMask's mask[i] is exactly
// Within(m, row_i, q, eps). The kernels accumulate per-point terms in
// ascending dimension order — the same floating-point operation chain as the
// scalar predicate — so the columnar execution path is bit-identical to the
// row-at-a-time path, not merely approximately equal.

// Cols is a columnar point set: column d holds coordinate d of every point,
// so Cols is the transpose of a []Point. All columns always share one
// length. The zero Cols is not usable; construct with NewCols, MakeCols, or
// ColsFromPoints.
//
// Views produced by Slice share the underlying column storage with their
// parent; kernels only read Cols, so sharing is safe.
type Cols struct {
	dims [][]float64
}

// NewCols returns an empty, appendable column set of the given
// dimensionality.
func NewCols(dim int) Cols {
	return Cols{dims: make([][]float64, dim)}
}

// MakeCols returns a column set of n zero points backed by a single flat
// arena — one allocation for the coordinate data regardless of n and dim.
// Callers fill it with Col(d)[i] = v.
func MakeCols(dim, n int) Cols {
	arena := make([]float64, dim*n)
	dims := make([][]float64, dim)
	for d := range dims {
		dims[d] = arena[d*n : (d+1)*n : (d+1)*n]
	}
	return Cols{dims: dims}
}

// ColsFromPoints transposes a row-major point slice into a freshly allocated
// column set. All points must share one dimensionality.
func ColsFromPoints(pts []Point) Cols {
	if len(pts) == 0 {
		return NewCols(0)
	}
	c := MakeCols(len(pts[0]), len(pts))
	for i, p := range pts {
		if len(p) != len(c.dims) {
			panic("geom: ColsFromPoints dimension mismatch")
		}
		for d, v := range p {
			c.dims[d][i] = v
		}
	}
	return c
}

// Dim reports the dimensionality (number of columns).
func (c Cols) Dim() int { return len(c.dims) }

// Len reports the number of points (rows).
func (c Cols) Len() int {
	if len(c.dims) == 0 {
		return 0
	}
	return len(c.dims[0])
}

// Col returns column d — coordinate d of every point. The slice is live
// storage, not a copy.
func (c Cols) Col(d int) []float64 { return c.dims[d] }

// Slice returns the view of rows [lo, hi). The view shares storage with c.
func (c Cols) Slice(lo, hi int) Cols {
	out := Cols{dims: make([][]float64, len(c.dims))}
	for d, col := range c.dims {
		out.dims[d] = col[lo:hi:hi]
	}
	return out
}

// SliceInto is Slice without allocating a fresh column-header slice: it
// turns c into the view of src rows [lo, hi), reusing c's header storage.
// Kernel-probing hot loops call it on a preallocated scratch Cols to stay
// allocation-free.
func (c *Cols) SliceInto(src Cols, lo, hi int) {
	if cap(c.dims) < len(src.dims) {
		c.dims = make([][]float64, len(src.dims))
	}
	c.dims = c.dims[:len(src.dims)]
	for d, col := range src.dims {
		c.dims[d] = col[lo:hi:hi]
	}
}

// PointAt materializes row i into dst (grown if needed) and returns it.
func (c Cols) PointAt(i int, dst Point) Point {
	if cap(dst) < len(c.dims) {
		dst = make(Point, len(c.dims))
	}
	dst = dst[:len(c.dims)]
	for d, col := range c.dims {
		dst[d] = col[i]
	}
	return dst
}

// AppendPoint appends one point. The coordinates are copied; p is not
// retained.
func (c *Cols) AppendPoint(p Point) {
	if len(p) != len(c.dims) {
		panic("geom: AppendPoint dimension mismatch")
	}
	for d, v := range p {
		c.dims[d] = append(c.dims[d], v)
	}
}

// Reset truncates to zero points, keeping column capacity for reuse.
func (c *Cols) Reset() {
	for d := range c.dims {
		c.dims[d] = c.dims[d][:0]
	}
}

// Gather resets c and fills it with the src rows selected by idx, in idx
// order. It is the candidate-collection step of the kernel probes: callers
// gather an index list into a reusable scratch Cols, then run one kernel
// call over the slab. Gather does not allocate once the scratch columns have
// grown to the working-set size.
func (c *Cols) Gather(src Cols, idx []int) {
	if len(c.dims) != len(src.dims) {
		if c.dims == nil {
			c.dims = make([][]float64, len(src.dims))
		} else {
			panic("geom: Gather dimension mismatch")
		}
	}
	for d := range c.dims {
		dst := c.dims[d][:0]
		col := src.dims[d]
		for _, i := range idx {
			dst = append(dst, col[i])
		}
		c.dims[d] = dst
	}
}

// CmpEps maps the similarity threshold ε onto the comparable-distance scale
// used by DistsSquared: ε² under L2 (squared-distance compares), ε itself
// under L1/L∞. A negative ε can match nothing — squaring would flip its
// sign, so it maps to -Inf, which no comparable distance (non-negative or
// NaN) satisfies. A NaN ε propagates and also matches nothing.
func CmpEps(m Metric, eps float64) float64 {
	if m == L2 {
		if eps < 0 {
			return math.Inf(-1)
		}
		return eps * eps
	}
	return eps
}

// DistsSquared computes the comparable distance from q to every point of c
// into out (len(out) must equal c.Len()): the squared Euclidean distance
// under L2, the sum of absolute differences under L1, and the maximum
// absolute difference under L∞. Compare against CmpEps(m, eps) to evaluate
// the predicate; take sqrt under L2 to recover δ2.
func DistsSquared(m Metric, c Cols, q Point, out []float64) {
	if len(q) != len(c.dims) {
		panic("geom: DistsSquared dimension mismatch")
	}
	out = out[:c.Len()]
	switch m {
	case L2:
		distsSqL2(c, q, out)
	case LInf:
		distsMaxAbs(c, q, out)
	case L1:
		distsSumAbs(c, q, out)
	default:
		panic("geom: unknown metric")
	}
}

// WithinMask evaluates the similarity predicate between q and every point of
// c in one batch: mask[i] reports whether δ(c_i, q) ≤ eps, and the return
// value counts the rows within. dists and mask are caller-owned scratch with
// capacity ≥ c.Len(); the call does not allocate.
func WithinMask(m Metric, c Cols, q Point, eps float64, dists []float64, mask []bool) int {
	n := c.Len()
	dists = dists[:n]
	mask = mask[:n]
	DistsSquared(m, c, q, dists)
	ce := CmpEps(m, eps)
	cnt := 0
	for i, d := range dists {
		in := d <= ce
		mask[i] = in
		if in {
			cnt++
		}
	}
	return cnt
}

// distsSqL2 fills out[i] = Σ_d (c[d][i]-q[d])², with dimension-specialized
// inner loops for the common 1-/2-/3-D cases and a column-sweep fallback.
// Terms accumulate in ascending dimension order, matching Within's chain.
func distsSqL2(c Cols, q Point, out []float64) {
	n := len(out)
	switch len(q) {
	case 1:
		xs := c.dims[0][:n]
		qx := q[0]
		for i, x := range xs {
			d := x - qx
			out[i] = d * d
		}
	case 2:
		xs, ys := c.dims[0][:n], c.dims[1][:n]
		qx, qy := q[0], q[1]
		for i := range xs {
			dx := xs[i] - qx
			dy := ys[i] - qy
			out[i] = dx*dx + dy*dy
		}
	case 3:
		xs, ys, zs := c.dims[0][:n], c.dims[1][:n], c.dims[2][:n]
		qx, qy, qz := q[0], q[1], q[2]
		for i := range xs {
			dx := xs[i] - qx
			dy := ys[i] - qy
			dz := zs[i] - qz
			out[i] = dx*dx + dy*dy + dz*dz
		}
	default:
		xs := c.dims[0][:n]
		q0 := q[0]
		for i, x := range xs {
			d := x - q0
			out[i] = d * d
		}
		for d := 1; d < len(q); d++ {
			col := c.dims[d][:n]
			qd := q[d]
			for i, v := range col {
				t := v - qd
				out[i] += t * t
			}
		}
	}
}

// distsSumAbs fills out[i] = Σ_d |c[d][i]-q[d]| in ascending dimension
// order.
func distsSumAbs(c Cols, q Point, out []float64) {
	n := len(out)
	switch len(q) {
	case 1:
		xs := c.dims[0][:n]
		qx := q[0]
		for i, x := range xs {
			out[i] = math.Abs(x - qx)
		}
	case 2:
		xs, ys := c.dims[0][:n], c.dims[1][:n]
		qx, qy := q[0], q[1]
		for i := range xs {
			out[i] = math.Abs(xs[i]-qx) + math.Abs(ys[i]-qy)
		}
	case 3:
		xs, ys, zs := c.dims[0][:n], c.dims[1][:n], c.dims[2][:n]
		qx, qy, qz := q[0], q[1], q[2]
		for i := range xs {
			out[i] = math.Abs(xs[i]-qx) + math.Abs(ys[i]-qy) + math.Abs(zs[i]-qz)
		}
	default:
		xs := c.dims[0][:n]
		q0 := q[0]
		for i, x := range xs {
			out[i] = math.Abs(x - q0)
		}
		for d := 1; d < len(q); d++ {
			col := c.dims[d][:n]
			qd := q[d]
			for i, v := range col {
				out[i] += math.Abs(v - qd)
			}
		}
	}
}

// distsMaxAbs fills out[i] = max_d |c[d][i]-q[d]|. The running maximum
// starts at 0 and only moves on a strict >, exactly like Dist's scalar
// sweep, so a NaN coordinate difference is skipped identically on both
// paths.
func distsMaxAbs(c Cols, q Point, out []float64) {
	n := len(out)
	switch len(q) {
	case 1:
		xs := c.dims[0][:n]
		qx := q[0]
		for i, x := range xs {
			m := 0.0
			if d := math.Abs(x - qx); d > m {
				m = d
			}
			out[i] = m
		}
	case 2:
		xs, ys := c.dims[0][:n], c.dims[1][:n]
		qx, qy := q[0], q[1]
		for i := range xs {
			m := 0.0
			if d := math.Abs(xs[i] - qx); d > m {
				m = d
			}
			if d := math.Abs(ys[i] - qy); d > m {
				m = d
			}
			out[i] = m
		}
	default:
		for i := range out {
			out[i] = 0
		}
		for d := 0; d < len(q); d++ {
			col := c.dims[d][:n]
			qd := q[d]
			for i, v := range col {
				if t := math.Abs(v - qd); t > out[i] {
					out[i] = t
				}
			}
		}
	}
}
