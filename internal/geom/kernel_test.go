package geom

import (
	"math"
	"math/rand"
	"testing"
)

// TestWithinEquivalenceSpecialValues is the satellite equivalence test for
// the Within restructure: the accumulate-then-compare predicate must agree
// with `Dist(p,q) <= eps` on every input — NaN and ±Inf coordinates, NaN,
// ±Inf, zero, and negative ε, exact-boundary distances, and dimensionalities
// on both sides of the withinSmallDim split.
func TestWithinEquivalenceSpecialValues(t *testing.T) {
	specials := []float64{0, 1, -1, 0.25, -0.25, 1e-12, -1e-12, 1e154,
		math.NaN(), math.Inf(1), math.Inf(-1)}
	epsVals := []float64{0, 0.25, 1, 2, -1, math.Copysign(0, -1),
		math.NaN(), math.Inf(1), math.Inf(-1)}
	rng := rand.New(rand.NewSource(11))

	check := func(m Metric, p, q Point, eps float64) {
		t.Helper()
		d := Dist(m, p, q)
		got, want := Within(m, p, q, eps), d <= eps
		if got != want {
			// L2's squared compare is allowed to disagree with the
			// sqrt-bearing compare only when ε is within one ulp of the
			// rounded distance — both verdicts are faithful roundings there.
			if m == L2 && math.Nextafter(eps, math.Inf(1)) >= d &&
				math.Nextafter(eps, math.Inf(-1)) <= d {
				return
			}
			t.Fatalf("%s dim=%d: Within(%v,%v,%g)=%v, Dist=%g (want %v)",
				m, len(p), p, q, eps, got, d, want)
		}
	}

	for _, m := range []Metric{L2, LInf, L1} {
		// Exhaustive special-value pairs in 1-D and 2-D.
		for _, a := range specials {
			for _, b := range specials {
				for _, eps := range epsVals {
					check(m, Point{a}, Point{b}, eps)
					check(m, Point{a, b}, Point{b, a}, eps)
					check(m, Point{a, 0.5}, Point{b, 0.5}, eps)
				}
			}
		}
		// Random vectors across the small-dim/large-dim split, with one
		// special value planted at a random position.
		for dim := 1; dim <= 7; dim++ {
			for i := 0; i < 500; i++ {
				p := make(Point, dim)
				q := make(Point, dim)
				for d := range p {
					p[d] = rng.NormFloat64() * 3
					q[d] = rng.NormFloat64() * 3
				}
				if i%5 == 0 {
					p[rng.Intn(dim)] = specials[rng.Intn(len(specials))]
				}
				eps := epsVals[rng.Intn(len(epsVals))]
				check(m, p, q, eps)
				// Exact boundary: ε equal to the distance itself must be
				// inclusive on both paths.
				if d := Dist(m, p, q); !math.IsNaN(d) && !math.IsInf(d, 0) {
					check(m, p, q, d)
				}
			}
		}
	}
}

// TestWithinExactBoundary pins the inclusive boundary on coordinates chosen
// so distance and ε are bit-equal without rounding.
func TestWithinExactBoundary(t *testing.T) {
	cases := []struct {
		m    Metric
		p, q Point
		eps  float64
	}{
		{L2, Point{0, 0}, Point{3, 4}, 5},
		{L2, Point{0, 0}, Point{0.25, 0}, 0.25},
		{LInf, Point{1, 2}, Point{1.25, 2.125}, 0.25},
		{L1, Point{0, 0}, Point{0.125, 0.125}, 0.25},
	}
	for _, c := range cases {
		if !Within(c.m, c.p, c.q, c.eps) {
			t.Errorf("%s: boundary Within(%v,%v,%g) = false, want true", c.m, c.p, c.q, c.eps)
		}
		// A threshold one ulp below the distance must reject.
		below := math.Nextafter(c.eps, 0)
		if Within(c.m, c.p, c.q, below) != (Dist(c.m, c.p, c.q) <= below) {
			t.Errorf("%s: one-ulp-below threshold disagrees with Dist", c.m)
		}
	}
}

// TestKernelMatchesWithin is the kernel↔scalar contract: WithinMask's mask
// must equal a per-row Within call — bit-identical verdicts, not just
// approximately — across metrics, dimensionalities, ε values, and special
// coordinates.
func TestKernelMatchesWithin(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	epsVals := []float64{0, 1e-9, 0.25, 1, 100, -1, math.NaN(), math.Inf(1)}
	for _, m := range []Metric{L2, LInf, L1} {
		for dim := 1; dim <= 6; dim++ {
			const n = 257 // odd, larger than typical vector widths
			pts := make([]Point, n)
			for i := range pts {
				p := make(Point, dim)
				for d := range p {
					p[d] = rng.NormFloat64() * 2
				}
				if i%17 == 0 {
					p[rng.Intn(dim)] = math.NaN()
				}
				if i%23 == 0 {
					p[rng.Intn(dim)] = math.Inf(1 - 2*(i%2))
				}
				pts[i] = p
			}
			cols := ColsFromPoints(pts)
			q := make(Point, dim)
			for d := range q {
				q[d] = rng.NormFloat64()
			}
			dists := make([]float64, n)
			mask := make([]bool, n)
			for _, eps := range epsVals {
				cnt := WithinMask(m, cols, q, eps, dists, mask)
				want := 0
				for i, p := range pts {
					w := Within(m, p, q, eps)
					if mask[i] != w {
						t.Fatalf("%s dim=%d eps=%g row %d: mask=%v Within=%v (p=%v q=%v)",
							m, dim, eps, i, mask[i], w, p, q)
					}
					if w {
						want++
					}
				}
				if cnt != want {
					t.Fatalf("%s dim=%d eps=%g: count=%d want %d", m, dim, eps, cnt, want)
				}
				// DistsSquared must be the comparable distance: Dist once
				// mapped through the same scale (and NaN where Dist is NaN).
				for i, p := range pts {
					d := Dist(m, p, q)
					got := dists[i]
					if m == L2 && !math.IsNaN(d) {
						got = math.Sqrt(got)
					}
					if math.IsNaN(d) != math.IsNaN(got) {
						t.Fatalf("%s dim=%d row %d: dists NaN mismatch (%v vs %v)", m, dim, i, got, d)
					}
					if !math.IsNaN(d) && math.Abs(got-d) > 1e-9*math.Max(1, d) {
						t.Fatalf("%s dim=%d row %d: dists=%v Dist=%v", m, dim, i, got, d)
					}
				}
			}
		}
	}
}

// TestColsBasics covers the columnar container: construction, gather,
// slicing, and point materialization.
func TestColsBasics(t *testing.T) {
	pts := []Point{{1, 2}, {3, 4}, {5, 6}, {7, 8}}
	c := ColsFromPoints(pts)
	if c.Dim() != 2 || c.Len() != 4 {
		t.Fatalf("dim/len = %d/%d", c.Dim(), c.Len())
	}
	if got := c.PointAt(2, nil); !got.Equal(pts[2]) {
		t.Fatalf("PointAt(2) = %v", got)
	}
	v := c.Slice(1, 3)
	if v.Len() != 2 || v.Col(0)[0] != 3 || v.Col(1)[1] != 6 {
		t.Fatalf("Slice view wrong: %v %v", v.Col(0), v.Col(1))
	}
	var sv Cols
	sv.SliceInto(c, 1, 3)
	if sv.Len() != 2 || sv.Col(0)[0] != 3 {
		t.Fatalf("SliceInto view wrong")
	}

	var g Cols
	g.Gather(c, []int{3, 0, 3})
	if g.Len() != 3 || g.Col(0)[0] != 7 || g.Col(1)[1] != 2 || g.Col(0)[2] != 7 {
		t.Fatalf("Gather wrong: %v %v", g.Col(0), g.Col(1))
	}
	g.Gather(c, []int{1})
	if g.Len() != 1 || g.Col(1)[0] != 4 {
		t.Fatalf("re-Gather wrong")
	}

	a := NewCols(3)
	a.AppendPoint(Point{1, 2, 3})
	a.AppendPoint(Point{4, 5, 6})
	if a.Len() != 2 || a.Col(2)[1] != 6 {
		t.Fatalf("AppendPoint wrong")
	}
	a.Reset()
	if a.Len() != 0 {
		t.Fatalf("Reset left %d rows", a.Len())
	}

	mk := MakeCols(2, 3)
	mk.Col(0)[1] = 9
	mk.Col(1)[2] = 8
	if mk.Len() != 3 || mk.Col(0)[1] != 9 || mk.Col(1)[2] != 8 {
		t.Fatalf("MakeCols fill wrong")
	}
}

// TestKernelScratchAllocs pins the kernel hot path allocation-free: with
// warm scratch buffers, DistsSquared, WithinMask, Gather, and SliceInto must
// not allocate.
func TestKernelScratchAllocs(t *testing.T) {
	const n = 512
	rng := rand.New(rand.NewSource(3))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{rng.Float64(), rng.Float64()}
	}
	cols := ColsFromPoints(pts)
	q := Point{0.5, 0.5}
	dists := make([]float64, n)
	mask := make([]bool, n)
	idx := make([]int, 0, n)
	for i := 0; i < n; i += 2 {
		idx = append(idx, i)
	}
	scratch := NewCols(2)
	scratch.Gather(cols, idx) // warm to working-set size
	var view Cols
	view.SliceInto(cols, 0, n)

	for name, fn := range map[string]func(){
		"DistsSquared": func() { DistsSquared(L2, cols, q, dists) },
		"WithinMask":   func() { WithinMask(L2, cols, q, 0.25, dists, mask) },
		"Gather":       func() { scratch.Gather(cols, idx) },
		"SliceInto":    func() { view.SliceInto(cols, 16, 256) },
	} {
		if a := testing.AllocsPerRun(100, fn); a != 0 {
			t.Errorf("%s allocates %.1f per call, want 0", name, a)
		}
	}
}

// kernelBenchData builds a deterministic 2-D workload for the kernel
// benchmarks.
func kernelBenchData(n int) (Cols, Point, []float64, []bool) {
	rng := rand.New(rand.NewSource(99))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{rng.Float64() * 4, rng.Float64() * 4}
	}
	return ColsFromPoints(pts), Point{2, 2}, make([]float64, n), make([]bool, n)
}

// BenchmarkKernelWithinMask measures batch-predicate throughput per metric —
// the quantity the BENCH_7 kernel probes track. Compare against
// BenchmarkScalarWithinColumn to see the layout + vectorization gain.
func BenchmarkKernelWithinMask(b *testing.B) {
	const n = 4096
	cols, q, dists, mask := kernelBenchData(n)
	for _, m := range []Metric{L2, LInf, L1} {
		b.Run(m.String(), func(b *testing.B) {
			b.SetBytes(int64(n * 16))
			var sink int
			for i := 0; i < b.N; i++ {
				sink += WithinMask(m, cols, q, 0.25, dists, mask)
			}
			_ = sink
		})
	}
}

// BenchmarkKernelDistsSquared measures raw comparable-distance throughput.
func BenchmarkKernelDistsSquared(b *testing.B) {
	const n = 4096
	cols, q, dists, _ := kernelBenchData(n)
	for _, m := range []Metric{L2, LInf, L1} {
		b.Run(m.String(), func(b *testing.B) {
			b.SetBytes(int64(n * 16))
			for i := 0; i < b.N; i++ {
				DistsSquared(m, cols, q, dists)
			}
		})
	}
}

// BenchmarkScalarWithinColumn is the row-at-a-time reference for the kernel
// benchmarks: the same predicate workload evaluated point-by-point.
func BenchmarkScalarWithinColumn(b *testing.B) {
	const n = 4096
	cols, q, _, _ := kernelBenchData(n)
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = cols.PointAt(i, nil)
	}
	for _, m := range []Metric{L2, LInf, L1} {
		b.Run(m.String(), func(b *testing.B) {
			b.SetBytes(int64(n * 16))
			var sink int
			for i := 0; i < b.N; i++ {
				cnt := 0
				for _, p := range pts {
					if Within(m, p, q, 0.25) {
						cnt++
					}
				}
				sink += cnt
			}
			_ = sink
		})
	}
}
