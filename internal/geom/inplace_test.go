package geom

import (
	"math"
	"math/rand"
	"testing"
)

func randomRect(r *rand.Rand, dim int) Rect {
	min := make(Point, dim)
	max := make(Point, dim)
	for i := 0; i < dim; i++ {
		a := r.Float64()*20 - 10
		min[i], max[i] = a, a+r.Float64()*5
	}
	return Rect{Min: min, Max: max}
}

// TestExpandRectInPlaceMatchesUnion: the in-place fast path must agree with
// the allocating Union.
func TestExpandRectInPlaceMatchesUnion(t *testing.T) {
	r := rand.New(rand.NewSource(130))
	for trial := 0; trial < 300; trial++ {
		dim := 1 + r.Intn(3)
		a := randomRect(r, dim)
		b := randomRect(r, dim)
		want := a.Union(b)
		got := a.Clone()
		got.ExpandRectInPlace(b)
		if !got.Equal(want) {
			t.Fatalf("ExpandRectInPlace %v + %v = %v, want %v", a, b, got, want)
		}
	}
}

// TestIntersectInPlaceMatchesIntersect: same for the shrinking path.
func TestIntersectInPlaceMatchesIntersect(t *testing.T) {
	r := rand.New(rand.NewSource(131))
	for trial := 0; trial < 300; trial++ {
		dim := 1 + r.Intn(3)
		a := randomRect(r, dim)
		b := randomRect(r, dim)
		want, wantOK := a.Intersect(b)
		got := a.Clone()
		gotOK := got.IntersectInPlace(b)
		if gotOK != wantOK {
			t.Fatalf("IntersectInPlace ok=%v, want %v", gotOK, wantOK)
		}
		if wantOK && !got.Equal(want) {
			t.Fatalf("IntersectInPlace %v ∩ %v = %v, want %v", a, b, got, want)
		}
	}
}

// TestUnionAreaMatchesUnion: the allocation-free area must equal the
// materialized union's area.
func TestUnionAreaMatchesUnion(t *testing.T) {
	r := rand.New(rand.NewSource(132))
	for trial := 0; trial < 300; trial++ {
		dim := 1 + r.Intn(3)
		a := randomRect(r, dim)
		b := randomRect(r, dim)
		if got, want := a.UnionArea(b), a.Union(b).Area(); math.Abs(got-want) > 1e-9 {
			t.Fatalf("UnionArea = %v, Union().Area() = %v", got, want)
		}
		if a.Enlargement(b) < -1e-12 {
			t.Fatalf("negative enlargement for %v + %v", a, b)
		}
	}
}

// TestMinDistProperties: MinDist is a valid lower bound on the distance to
// every point inside the rectangle, and zero exactly for contained points.
func TestMinDistProperties(t *testing.T) {
	r := rand.New(rand.NewSource(133))
	for _, m := range []Metric{L2, LInf, L1} {
		for trial := 0; trial < 200; trial++ {
			rect := randomRect(r, 2)
			p := randomPoint(r, 2)
			md := MinDist(m, p, rect)
			if rect.Contains(p) && md != 0 {
				t.Fatalf("%v: contained point has MinDist %v", m, md)
			}
			// Sample interior points: none may be closer than MinDist.
			for s := 0; s < 20; s++ {
				q := Point{
					rect.Min[0] + r.Float64()*(rect.Max[0]-rect.Min[0]),
					rect.Min[1] + r.Float64()*(rect.Max[1]-rect.Min[1]),
				}
				if d := Dist(m, p, q); d < md-1e-9 {
					t.Fatalf("%v: interior point at %v < MinDist %v", m, d, md)
				}
			}
			// The closest corner/projection achieves the bound under L2.
			if m == L2 {
				proj := Point{
					math.Max(rect.Min[0], math.Min(p[0], rect.Max[0])),
					math.Max(rect.Min[1], math.Min(p[1], rect.Max[1])),
				}
				if d := Dist(L2, p, proj); math.Abs(d-md) > 1e-9 {
					t.Fatalf("projection distance %v != MinDist %v", d, md)
				}
			}
		}
	}
}

func TestL1DistKnownValues(t *testing.T) {
	if d := Dist(L1, Point{0, 0}, Point{3, 4}); d != 7 {
		t.Fatalf("L1 distance = %v, want 7", d)
	}
	if !Within(L1, Point{0, 0}, Point{3, 4}, 7) || Within(L1, Point{0, 0}, Point{3, 4}, 6.999) {
		t.Fatal("L1 Within boundary wrong")
	}
	// Metric ordering: L∞ ≤ L2 ≤ L1.
	r := rand.New(rand.NewSource(134))
	for trial := 0; trial < 200; trial++ {
		p, q := randomPoint(r, 3), randomPoint(r, 3)
		dInf, d2, d1 := Dist(LInf, p, q), Dist(L2, p, q), Dist(L1, p, q)
		if dInf > d2+1e-12 || d2 > d1+1e-12 {
			t.Fatalf("metric ordering violated: %v %v %v", dInf, d2, d1)
		}
	}
}
