package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMetricString(t *testing.T) {
	if L2.String() != "L2" || LInf.String() != "LINF" {
		t.Fatalf("unexpected metric names: %v %v", L2, LInf)
	}
	if got := Metric(9).String(); got != "Metric(9)" {
		t.Fatalf("unexpected unknown-metric name %q", got)
	}
}

func TestParseMetric(t *testing.T) {
	cases := map[string]Metric{
		"L2": L2, "l2": L2, "LTWO": L2, "ltwo": L2,
		"LINF": LInf, "linf": LInf, "LONE": LInf, "lone": LInf,
		"L1": L1, "manhattan": L1,
	}
	for in, want := range cases {
		got, err := ParseMetric(in)
		if err != nil || got != want {
			t.Errorf("ParseMetric(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if m, err := ParseMetric("L1"); err != nil || m != L1 {
		t.Errorf("ParseMetric(L1) = %v, %v", m, err)
	}
	if _, err := ParseMetric("chebyshov"); err == nil {
		t.Error("ParseMetric accepted an unknown metric")
	}
}

func TestDistKnownValues(t *testing.T) {
	p := Point{0, 0}
	q := Point{3, 4}
	if d := Dist(L2, p, q); math.Abs(d-5) > 1e-12 {
		t.Errorf("L2 distance = %v, want 5", d)
	}
	if d := Dist(LInf, p, q); d != 4 {
		t.Errorf("LInf distance = %v, want 4", d)
	}
	// 3-D.
	a := Point{1, 2, 3}
	b := Point{4, 6, 3}
	if d := Dist(L2, a, b); math.Abs(d-5) > 1e-12 {
		t.Errorf("3-D L2 distance = %v, want 5", d)
	}
	if d := Dist(LInf, a, b); d != 4 {
		t.Errorf("3-D LInf distance = %v, want 4", d)
	}
}

func TestDistDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dist did not panic on dimension mismatch")
		}
	}()
	Dist(L2, Point{1}, Point{1, 2})
}

func TestWithinBoundary(t *testing.T) {
	p := Point{0, 0}
	q := Point{3, 4}
	if !Within(L2, p, q, 5) {
		t.Error("Within should include the boundary (L2)")
	}
	if Within(L2, p, q, 4.999) {
		t.Error("Within accepted a point beyond eps (L2)")
	}
	if !Within(LInf, p, q, 4) {
		t.Error("Within should include the boundary (LInf)")
	}
	if Within(LInf, p, q, 3.999) {
		t.Error("Within accepted a point beyond eps (LInf)")
	}
}

func randomPoint(r *rand.Rand, dim int) Point {
	p := make(Point, dim)
	for i := range p {
		p[i] = r.Float64()*20 - 10
	}
	return p
}

func TestDistProperties(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, m := range []Metric{L2, LInf} {
		for dim := 1; dim <= 4; dim++ {
			for trial := 0; trial < 200; trial++ {
				p := randomPoint(r, dim)
				q := randomPoint(r, dim)
				s := randomPoint(r, dim)
				dpq, dqp := Dist(m, p, q), Dist(m, q, p)
				if dpq != dqp {
					t.Fatalf("%v: asymmetric distance %v vs %v", m, dpq, dqp)
				}
				if dpq < 0 {
					t.Fatalf("%v: negative distance", m)
				}
				if Dist(m, p, p) != 0 {
					t.Fatalf("%v: non-zero self distance", m)
				}
				if Dist(m, p, s) > dpq+Dist(m, q, s)+1e-9 {
					t.Fatalf("%v: triangle inequality violated", m)
				}
				// LInf never exceeds L2.
				if Dist(LInf, p, q) > Dist(L2, p, q)+1e-12 {
					t.Fatalf("LInf exceeded L2 for %v %v", p, q)
				}
			}
		}
	}
}

func TestWithinAgreesWithDist(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, m := range []Metric{L2, LInf} {
		for trial := 0; trial < 500; trial++ {
			p := randomPoint(r, 3)
			q := randomPoint(r, 3)
			eps := r.Float64() * 10
			d := Dist(m, p, q)
			if math.Abs(d-eps) < 1e-9 {
				continue // numerically on the boundary; either answer is fine
			}
			if got, want := Within(m, p, q, eps), d <= eps; got != want {
				t.Fatalf("%v: Within=%v but Dist=%v eps=%v", m, got, d, eps)
			}
		}
	}
}

func TestPointCloneEqual(t *testing.T) {
	p := Point{1, 2, 3}
	q := p.Clone()
	if !p.Equal(q) {
		t.Fatal("clone not equal")
	}
	q[0] = 9
	if p[0] == 9 {
		t.Fatal("clone shares storage")
	}
	if p.Equal(Point{1, 2}) {
		t.Fatal("points of different dimensions compared equal")
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{4, 2})
	if r.Area() != 8 {
		t.Errorf("Area = %v, want 8", r.Area())
	}
	if r.Margin() != 6 {
		t.Errorf("Margin = %v, want 6", r.Margin())
	}
	if !r.Contains(Point{4, 2}) || !r.Contains(Point{0, 0}) || !r.Contains(Point{2, 1}) {
		t.Error("Contains rejected interior/boundary point")
	}
	if r.Contains(Point{4.1, 1}) {
		t.Error("Contains accepted exterior point")
	}
	if c := r.Center(); c[0] != 2 || c[1] != 1 {
		t.Errorf("Center = %v", c)
	}
	if r.Side(0) != 4 || r.Side(1) != 2 {
		t.Error("Side lengths wrong")
	}
}

func TestNewRectPanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRect did not panic on inverted corners")
		}
	}()
	NewRect(Point{1, 0}, Point{0, 1})
}

func TestRectIntersection(t *testing.T) {
	a := NewRect(Point{0, 0}, Point{4, 4})
	b := NewRect(Point{2, 2}, Point{6, 6})
	got, ok := a.Intersect(b)
	if !ok || !got.Equal(NewRect(Point{2, 2}, Point{4, 4})) {
		t.Fatalf("Intersect = %v, %v", got, ok)
	}
	c := NewRect(Point{5, 5}, Point{7, 7})
	if _, ok := a.Intersect(c); ok {
		t.Fatal("Intersect reported overlap for disjoint rects")
	}
	// Touching rectangles intersect at the shared boundary.
	d := NewRect(Point{4, 0}, Point{6, 4})
	if inter, ok := a.Intersect(d); !ok || inter.Area() != 0 {
		t.Fatalf("touching rects: %v %v", inter, ok)
	}
	if !a.Intersects(b) || a.Intersects(c) || !a.Intersects(d) {
		t.Fatal("Intersects disagrees with Intersect")
	}
}

func TestRectUnionExpandContainsRect(t *testing.T) {
	a := NewRect(Point{0, 0}, Point{1, 1})
	b := NewRect(Point{2, -1}, Point{3, 0.5})
	u := a.Union(b)
	if !u.ContainsRect(a) || !u.ContainsRect(b) {
		t.Fatal("Union does not contain operands")
	}
	e := a.Expand(Point{-1, 5})
	if !e.Contains(Point{-1, 5}) || !e.ContainsRect(a) {
		t.Fatal("Expand lost coverage")
	}
	if a.ContainsRect(u) {
		t.Fatal("ContainsRect accepted a larger rect")
	}
	if a.Enlargement(b) != u.Area()-a.Area() {
		t.Fatal("Enlargement inconsistent with Union")
	}
}

func TestBoxAround(t *testing.T) {
	b := BoxAround(Point{1, 2}, 3)
	want := NewRect(Point{-2, -1}, Point{4, 5})
	if !b.Equal(want) {
		t.Fatalf("BoxAround = %v, want %v", b, want)
	}
	// BoxAround is exactly the LInf ball.
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		p := randomPoint(r, 2)
		q := randomPoint(r, 2)
		eps := r.Float64() * 5
		if BoxAround(p, eps).Contains(q) != Within(LInf, p, q, eps) {
			t.Fatalf("BoxAround disagrees with LInf ball at %v %v eps=%v", p, q, eps)
		}
	}
}

func TestRectQuickProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(4))}
	commutes := func(ax, ay, bx, by, w1, w2 float64) bool {
		w1, w2 = math.Abs(w1), math.Abs(w2)
		a := NewRect(Point{ax, ay}, Point{ax + w1, ay + w1})
		b := NewRect(Point{bx, by}, Point{bx + w2, by + w2})
		i1, ok1 := a.Intersect(b)
		i2, ok2 := b.Intersect(a)
		if ok1 != ok2 {
			return false
		}
		if ok1 && !i1.Equal(i2) {
			return false
		}
		return a.Union(b).Equal(b.Union(a))
	}
	if err := quick.Check(commutes, cfg); err != nil {
		t.Error(err)
	}
	idempotent := func(ax, ay, w float64) bool {
		w = math.Abs(w)
		a := NewRect(Point{ax, ay}, Point{ax + w, ay + w})
		i, ok := a.Intersect(a)
		return ok && i.Equal(a) && a.Union(a).Equal(a) && a.ContainsRect(a)
	}
	if err := quick.Check(idempotent, cfg); err != nil {
		t.Error(err)
	}
}

func TestPointRectAndClone(t *testing.T) {
	p := Point{1, 2}
	r := PointRect(p)
	if r.Area() != 0 || !r.Contains(p) {
		t.Fatal("PointRect is not the degenerate rect at p")
	}
	c := r.Clone()
	c.Min[0] = -9
	if r.Min[0] == -9 {
		t.Fatal("Clone shares storage")
	}
	if r.Dim() != 2 {
		t.Fatal("Dim wrong")
	}
}
