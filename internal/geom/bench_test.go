package geom

import (
	"math/rand"
	"testing"
)

// BenchmarkDistWithin pins the relative cost of the sqrt-bearing Dist against
// the squared-distance Within on the predicate hot path. If Within regresses
// toward Dist-level cost (e.g. someone reintroduces a square root), the gap
// this benchmark shows collapses and the regression is visible in the CI
// bench smoke run.
func BenchmarkDistWithin(b *testing.B) {
	const n = 1024
	rng := rand.New(rand.NewSource(42))
	ps := make([]Point, n)
	qs := make([]Point, n)
	for i := range ps {
		ps[i] = Point{rng.Float64(), rng.Float64()}
		qs[i] = Point{rng.Float64(), rng.Float64()}
	}
	for _, m := range []Metric{L2, LInf, L1} {
		b.Run("Dist/"+m.String(), func(b *testing.B) {
			var sink float64
			for i := 0; i < b.N; i++ {
				k := i % n
				sink += Dist(m, ps[k], qs[k])
			}
			_ = sink
		})
		b.Run("Within/"+m.String(), func(b *testing.B) {
			var sink bool
			for i := 0; i < b.N; i++ {
				k := i % n
				sink = Within(m, ps[k], qs[k], 0.25) || sink
			}
			_ = sink
		})
	}
}

// TestWithinMatchesDist cross-checks the sqrt-free predicate against the
// plain distance on random pairs, including eps values that land exactly on
// the distance (the boundary must stay inclusive under the squared compare).
func TestWithinMatchesDist(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, m := range []Metric{L2, LInf, L1} {
		for i := 0; i < 2000; i++ {
			p := Point{rng.Float64() * 10, rng.Float64() * 10}
			q := Point{rng.Float64() * 10, rng.Float64() * 10}
			eps := rng.Float64() * 5
			if got, want := Within(m, p, q, eps), Dist(m, p, q) <= eps; got != want {
				t.Fatalf("%s: Within(%v,%v,%g)=%v, Dist=%g", m, p, q, eps, got, Dist(m, p, q))
			}
		}
		p := Point{0, 0}
		q := Point{3, 4}
		if !Within(m, p, q, Dist(m, p, q)) {
			t.Fatalf("%s: boundary eps must be inclusive", m)
		}
	}
}
