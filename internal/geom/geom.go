// Package geom provides the geometric substrate for the similarity group-by
// operators: multi-dimensional points, axis-aligned rectangles, and the
// Minkowski distance metrics — L2 and L∞ from the paper, plus L1 as an
// extension.
//
// Points are plain float64 slices so that callers can work in any number of
// dimensions; the operators in internal/core are dimension-agnostic, with the
// 2-D case receiving the convex-hull refinement described in the paper.
package geom

import (
	"fmt"
	"math"
	"strings"
)

// Metric selects the Minkowski distance function δ used by a similarity
// predicate ξ(δ,ε).
type Metric uint8

const (
	// L2 is the Euclidean distance δ2(p,q) = sqrt(Σ (p_i-q_i)²).
	L2 Metric = iota
	// LInf is the maximum (Chebyshev) distance δ∞(p,q) = max_i |p_i-q_i|.
	LInf
	// L1 is the Manhattan distance δ1(p,q) = Σ |p_i-q_i|. The paper
	// restricts itself to L2 and L∞; L1 is supported as an extension
	// (every filter in the operators is conservative for it because
	// δ∞ ≤ δ1).
	L1
)

// String returns the SQL spelling of the metric.
func (m Metric) String() string {
	switch m {
	case L2:
		return "L2"
	case LInf:
		return "LINF"
	case L1:
		return "L1"
	default:
		return fmt.Sprintf("Metric(%d)", uint8(m))
	}
}

// ParseMetric maps the SQL spellings used by the paper's grammar
// ("L2"/"LTWO", "LINF"/"LONE") plus the "L1" extension onto a Metric.
func ParseMetric(s string) (Metric, error) {
	switch strings.ToUpper(s) {
	case "L2", "LTWO":
		return L2, nil
	case "LINF", "LONE", "L∞":
		return LInf, nil
	case "L1", "MANHATTAN":
		return L1, nil
	default:
		return 0, fmt.Errorf("geom: unknown metric %q", s)
	}
}

// Point is a point in d-dimensional space. The zero-length point is invalid
// for distance computations.
type Point []float64

// Dim reports the dimensionality of p.
func (p Point) Dim() int { return len(p) }

// Clone returns a copy of p that does not share storage.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q are identical coordinate-wise.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Dist computes δ(p,q) under metric m. Both points must share a dimension;
// Dist panics otherwise, as mixing dimensions is always a programming error.
func Dist(m Metric, p, q Point) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("geom: dimension mismatch %d vs %d", len(p), len(q)))
	}
	switch m {
	case L2:
		var s float64
		for i := range p {
			d := p[i] - q[i]
			s += d * d
		}
		return math.Sqrt(s)
	case LInf:
		var mx float64
		for i := range p {
			d := math.Abs(p[i] - q[i])
			if d > mx {
				mx = d
			}
		}
		return mx
	case L1:
		var s float64
		for i := range p {
			s += math.Abs(p[i] - q[i])
		}
		return s
	default:
		panic("geom: unknown metric")
	}
}

// withinSmallDim is the dimensionality up to which Within accumulates the
// whole distance before comparing. The per-coordinate early-exit branch is
// only worth its misprediction cost on long coordinate vectors; for the 2-D
// and 3-D hot cases a straight-line accumulate-then-compare body is both
// faster (it vectorizes) and exactly the operation chain the batch kernels
// in kernel.go use.
const withinSmallDim = 4

// Within evaluates the similarity predicate ξ(δ,ε): it reports whether
// δ(p,q) ≤ eps — equivalently, Dist(m, p, q) <= eps, for every input
// including NaN/±Inf coordinates and non-positive or non-finite ε (the
// equivalence is pinned by TestWithinMatchesDist and
// TestWithinEquivalenceSpecialValues). For L2 the comparison is performed on
// squared distances to avoid the square root on the hot path; a negative ε
// therefore needs an explicit guard, since squaring it would flip its sign
// and match points a negative threshold must reject. The squared compare is
// the authoritative L2 semantics (shared bit-for-bit with the batch kernels
// in kernel.go); it can disagree with the sqrt-bearing Dist compare only
// when ε sits within one ulp of the true distance, where both roundings are
// defensible.
func Within(m Metric, p, q Point, eps float64) bool {
	if len(p) != len(q) {
		panic(fmt.Sprintf("geom: dimension mismatch %d vs %d", len(p), len(q)))
	}
	switch m {
	case L2:
		if eps < 0 {
			return false
		}
		e2 := eps * eps
		var s float64
		if len(p) <= withinSmallDim {
			for i := range p {
				d := p[i] - q[i]
				s += d * d
			}
			return s <= e2
		}
		for i := range p {
			d := p[i] - q[i]
			s += d * d
			if s > e2 {
				return false
			}
		}
		return s <= e2
	case LInf:
		if len(p) <= withinSmallDim {
			// Accumulate the running maximum exactly like Dist does (strict
			// >, starting at 0), then compare once — the final compare is
			// false for NaN ε, where a per-coordinate `d > eps` test would
			// never fire and wrongly accept.
			var mx float64
			for i := range p {
				if d := math.Abs(p[i] - q[i]); d > mx {
					mx = d
				}
			}
			return mx <= eps
		}
		if !(eps >= 0) {
			return false // negative or NaN ε matches nothing
		}
		for i := range p {
			d := math.Abs(p[i] - q[i])
			if d > eps {
				return false
			}
		}
		return true
	case L1:
		var s float64
		if len(p) <= withinSmallDim {
			for i := range p {
				s += math.Abs(p[i] - q[i])
			}
			return s <= eps
		}
		for i := range p {
			s += math.Abs(p[i] - q[i])
			if s > eps {
				return false
			}
		}
		// Not `return true`: s may be NaN (a NaN coordinate never trips the
		// early exit because NaN compares false), and NaN ≤ ε must reject
		// just as Dist(p,q) <= eps does.
		return s <= eps
	default:
		panic("geom: unknown metric")
	}
}

// Rect is a closed axis-aligned rectangle (hyper-box) [Min, Max].
type Rect struct {
	Min, Max Point
}

// NewRect returns a rectangle with the given corners. It panics if the
// corners disagree on dimensionality or are inverted on some axis.
func NewRect(min, max Point) Rect {
	if len(min) != len(max) {
		panic("geom: corner dimension mismatch")
	}
	for i := range min {
		if min[i] > max[i] {
			panic(fmt.Sprintf("geom: inverted rectangle on axis %d", i))
		}
	}
	return Rect{Min: min, Max: max}
}

// BoxAround returns the axis-aligned box of half-side r centred at p: the set
// of points within L∞ distance r of p. It is the ε-rectangle used throughout
// the paper's bounds-checking filter.
func BoxAround(p Point, r float64) Rect {
	min := make(Point, len(p))
	max := make(Point, len(p))
	for i, v := range p {
		min[i] = v - r
		max[i] = v + r
	}
	return Rect{Min: min, Max: max}
}

// PointRect returns the degenerate rectangle covering exactly p.
func PointRect(p Point) Rect {
	return Rect{Min: p.Clone(), Max: p.Clone()}
}

// Dim reports the dimensionality of the rectangle.
func (r Rect) Dim() int { return len(r.Min) }

// Clone returns a deep copy of r.
func (r Rect) Clone() Rect {
	return Rect{Min: r.Min.Clone(), Max: r.Max.Clone()}
}

// Contains reports whether p lies inside r (boundaries included).
func (r Rect) Contains(p Point) bool {
	for i := range p {
		if p[i] < r.Min[i] || p[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether o lies entirely inside r.
func (r Rect) ContainsRect(o Rect) bool {
	for i := range r.Min {
		if o.Min[i] < r.Min[i] || o.Max[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and o share at least one point.
func (r Rect) Intersects(o Rect) bool {
	for i := range r.Min {
		if r.Min[i] > o.Max[i] || r.Max[i] < o.Min[i] {
			return false
		}
	}
	return true
}

// Intersect returns the intersection of r and o. ok is false when the
// rectangles are disjoint, in which case the returned rectangle is undefined.
// Rectangles are closed under intersection — the property the paper relies on
// for the correctness of the ε-All bounding rectangle under L∞.
func (r Rect) Intersect(o Rect) (out Rect, ok bool) {
	min := make(Point, len(r.Min))
	max := make(Point, len(r.Min))
	for i := range r.Min {
		min[i] = math.Max(r.Min[i], o.Min[i])
		max[i] = math.Min(r.Max[i], o.Max[i])
		if min[i] > max[i] {
			return Rect{}, false
		}
	}
	return Rect{Min: min, Max: max}, true
}

// Union returns the minimum bounding rectangle of r and o.
func (r Rect) Union(o Rect) Rect {
	min := make(Point, len(r.Min))
	max := make(Point, len(r.Min))
	for i := range r.Min {
		min[i] = math.Min(r.Min[i], o.Min[i])
		max[i] = math.Max(r.Max[i], o.Max[i])
	}
	return Rect{Min: min, Max: max}
}

// Expand grows r in place so that it covers p, returning the grown rectangle.
func (r Rect) Expand(p Point) Rect {
	min := make(Point, len(r.Min))
	max := make(Point, len(r.Min))
	for i := range r.Min {
		min[i] = math.Min(r.Min[i], p[i])
		max[i] = math.Max(r.Max[i], p[i])
	}
	return Rect{Min: min, Max: max}
}

// ExpandRectInPlace grows r in place to also cover o. The receiver's corner
// slices are mutated, so the caller must own their storage exclusively.
func (r *Rect) ExpandRectInPlace(o Rect) {
	for i := range r.Min {
		if o.Min[i] < r.Min[i] {
			r.Min[i] = o.Min[i]
		}
		if o.Max[i] > r.Max[i] {
			r.Max[i] = o.Max[i]
		}
	}
}

// IntersectInPlace shrinks r in place to its intersection with o, reporting
// whether the intersection is non-empty. On an empty intersection r is left
// in an unspecified state.
func (r *Rect) IntersectInPlace(o Rect) bool {
	for i := range r.Min {
		if o.Min[i] > r.Min[i] {
			r.Min[i] = o.Min[i]
		}
		if o.Max[i] < r.Max[i] {
			r.Max[i] = o.Max[i]
		}
		if r.Min[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Area returns the d-dimensional volume of r.
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.Min {
		a *= r.Max[i] - r.Min[i]
	}
	return a
}

// Margin returns the sum of the side lengths of r (used by node-split
// heuristics).
func (r Rect) Margin() float64 {
	var s float64
	for i := range r.Min {
		s += r.Max[i] - r.Min[i]
	}
	return s
}

// UnionArea returns the area of the minimum bounding rectangle of r and o
// without materializing it.
func (r Rect) UnionArea(o Rect) float64 {
	a := 1.0
	for i := range r.Min {
		lo, hi := r.Min[i], r.Max[i]
		if o.Min[i] < lo {
			lo = o.Min[i]
		}
		if o.Max[i] > hi {
			hi = o.Max[i]
		}
		a *= hi - lo
	}
	return a
}

// Enlargement returns how much the area of r would grow if it were extended
// to also cover o.
func (r Rect) Enlargement(o Rect) float64 {
	return r.UnionArea(o) - r.Area()
}

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	c := make(Point, len(r.Min))
	for i := range r.Min {
		c[i] = (r.Min[i] + r.Max[i]) / 2
	}
	return c
}

// Side returns the extent of r along the given axis.
func (r Rect) Side(axis int) float64 { return r.Max[axis] - r.Min[axis] }

// Equal reports whether r and o are the same rectangle.
func (r Rect) Equal(o Rect) bool {
	return r.Min.Equal(o.Min) && r.Max.Equal(o.Max)
}

func (r Rect) String() string {
	return fmt.Sprintf("Rect{%v, %v}", []float64(r.Min), []float64(r.Max))
}

// MinDist returns the smallest distance under metric m between p and any
// point of r (0 when p is inside r). R-tree nearest-neighbour search uses it
// as the lower bound for pruning.
func MinDist(m Metric, p Point, r Rect) float64 {
	switch m {
	case L2:
		var s float64
		for i, v := range p {
			d := axisGap(v, r.Min[i], r.Max[i])
			s += d * d
		}
		return math.Sqrt(s)
	case LInf:
		var mx float64
		for i, v := range p {
			if d := axisGap(v, r.Min[i], r.Max[i]); d > mx {
				mx = d
			}
		}
		return mx
	case L1:
		var s float64
		for i, v := range p {
			s += axisGap(v, r.Min[i], r.Max[i])
		}
		return s
	default:
		panic("geom: unknown metric")
	}
}

// axisGap is the one-dimensional distance from v to the interval [lo, hi].
func axisGap(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}
