package geom

// EpsRect maintains the ε-All bounding rectangle Rε-All of a group
// (Definition 5 in the paper) together with the minimum bounding rectangle of
// the group's members.
//
// Invariants, per §6.3:
//
//   - Under L∞, any point inside Bound() is within ε of every member, so the
//     rectangle test alone decides group membership in O(d) time.
//   - Under L2, a point outside Bound() cannot be within ε of every member
//     (δ∞ ≤ δ2), so Bound() is a conservative filter that must be refined
//     (convex hull test, or exact member checks).
//
// Bound() is the intersection of the 2ε-boxes centred at the members. It only
// shrinks as points join; it never shrinks below an ε-sided box because the
// members of a clique span at most ε per axis. Removing a member (the
// ELIMINATE and FORM-NEW-GROUP overlap semantics) can grow the rectangle, so
// Remove recomputes it from the surviving members.
type EpsRect struct {
	eps   float64
	bound Rect // ∩ BoxAround(member, eps); valid iff n > 0
	mbr   Rect // minimum bounding rectangle of the members
	n     int
}

// NewEpsRect returns an ε-All rectangle seeded with a first member p.
func NewEpsRect(p Point, eps float64) *EpsRect {
	return &EpsRect{
		eps:   eps,
		bound: BoxAround(p, eps),
		mbr:   PointRect(p),
		n:     1,
	}
}

// Len reports the number of members the rectangle currently summarizes.
func (e *EpsRect) Len() int { return e.n }

// Eps returns the similarity threshold the rectangle was built with.
func (e *EpsRect) Eps() float64 { return e.eps }

// Bound returns the current ε-All rectangle. It must not be mutated and is
// only meaningful while Len() > 0.
func (e *EpsRect) Bound() Rect { return e.bound }

// MBR returns the minimum bounding rectangle of the members.
func (e *EpsRect) MBR() Rect { return e.mbr }

// ContainsPoint reports whether p passes the ε-All rectangle test
// (PointInRectangleTest in Procedure 4).
func (e *EpsRect) ContainsPoint(p Point) bool {
	return e.n > 0 && e.bound.Contains(p)
}

// Add shrinks the rectangle to account for a new member p. The caller is
// responsible for having verified membership first.
func (e *EpsRect) Add(p Point) {
	if e.n == 0 {
		e.bound = BoxAround(p, e.eps)
		e.mbr = PointRect(p)
		e.n = 1
		return
	}
	// Intersection cannot be empty for a legitimate member: p is within ε of
	// every existing member under L∞ (exactly, or implied by L2 ≤ ε), so p's
	// box covers every member and, symmetrically, every member's box covers
	// p. We still guard to fail loudly on misuse. The rectangles are mutated
	// in place — EpsRect owns their storage.
	for i, v := range p {
		if lo := v - e.eps; lo > e.bound.Min[i] {
			e.bound.Min[i] = lo
		}
		if hi := v + e.eps; hi < e.bound.Max[i] {
			e.bound.Max[i] = hi
		}
		if e.bound.Min[i] > e.bound.Max[i] {
			panic("geom: EpsRect.Add called with a point outside the ε-All rectangle")
		}
		if v < e.mbr.Min[i] {
			e.mbr.Min[i] = v
		}
		if v > e.mbr.Max[i] {
			e.mbr.Max[i] = v
		}
	}
	e.n++
}

// Rebuild recomputes both rectangles from an explicit member list. It is used
// after member removals, which can legitimately grow the ε-All rectangle.
func (e *EpsRect) Rebuild(members []Point) {
	e.n = len(members)
	if e.n == 0 {
		e.bound = Rect{}
		e.mbr = Rect{}
		return
	}
	e.bound = BoxAround(members[0], e.eps)
	e.mbr = PointRect(members[0])
	for _, p := range members[1:] {
		b, ok := e.bound.Intersect(BoxAround(p, e.eps))
		if !ok {
			panic("geom: EpsRect.Rebuild over points that do not form an L∞ clique")
		}
		e.bound = b
		e.mbr = e.mbr.Expand(p)
	}
}
