package geom

import (
	"math/rand"
	"testing"
)

// TestEpsRectPaperExample walks Figure 5 of the paper: a group growing from
// a1(2,2) with ε=2 under L∞, shrinking its ε-All rectangle as members join.
func TestEpsRectPaperExample(t *testing.T) {
	eps := 2.0
	e := NewEpsRect(Point{2, 2}, eps)
	if got, want := e.Bound(), NewRect(Point{0, 0}, Point{4, 4}); !got.Equal(want) {
		t.Fatalf("initial Rε-All = %v, want %v (2ε-sided box centred at a1)", got, want)
	}
	// a2(3,3) is inside the rectangle, hence within ε of all members.
	a2 := Point{3, 3}
	if !e.ContainsPoint(a2) {
		t.Fatal("a2 should pass the rectangle test")
	}
	e.Add(a2)
	if got, want := e.Bound(), NewRect(Point{1, 1}, Point{4, 4}); !got.Equal(want) {
		t.Fatalf("after a2, Rε-All = %v, want %v", got, want)
	}
	// a3(2,4): inside the shrunken rectangle, joins too.
	a3 := Point{2, 4}
	if !e.ContainsPoint(a3) {
		t.Fatal("a3 should pass the rectangle test")
	}
	e.Add(a3)
	if got, want := e.Bound(), NewRect(Point{1, 2}, Point{4, 4}); !got.Equal(want) {
		t.Fatalf("after a3, Rε-All = %v, want %v", got, want)
	}
	if e.Len() != 3 {
		t.Fatalf("Len = %d, want 3", e.Len())
	}
	if e.Eps() != eps {
		t.Fatalf("Eps = %v", e.Eps())
	}
}

// TestEpsRectInvariantLInf is the paper's central claim: under L∞, a point
// inside Rε-All is within ε of every member, and conversely a point within
// ε of every member is inside Rε-All.
func TestEpsRectInvariantLInf(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for trial := 0; trial < 200; trial++ {
		eps := 0.5 + r.Float64()*2
		seed := Point{r.Float64() * 10, r.Float64() * 10}
		e := NewEpsRect(seed, eps)
		members := []Point{seed}
		// Grow a clique by acceptance through the rectangle.
		for i := 0; i < 30; i++ {
			c := Point{r.Float64() * 10, r.Float64() * 10}
			if e.ContainsPoint(c) {
				e.Add(c)
				members = append(members, c)
			}
		}
		// The accepted members must form an L∞ clique.
		for i := range members {
			for j := i + 1; j < len(members); j++ {
				if !Within(LInf, members[i], members[j], eps) {
					t.Fatalf("accepted members violate the clique invariant: %v %v", members[i], members[j])
				}
			}
		}
		// Exactness: probes within ε of all members are inside the rect.
		for i := 0; i < 50; i++ {
			probe := Point{r.Float64() * 10, r.Float64() * 10}
			withinAll := true
			for _, m := range members {
				if !Within(LInf, probe, m, eps) {
					withinAll = false
					break
				}
			}
			if withinAll != e.ContainsPoint(probe) {
				t.Fatalf("rectangle test is not exact under LInf: probe %v withinAll=%v", probe, withinAll)
			}
		}
	}
}

// TestEpsRectConservativeL2 checks the L2 filter property: a point outside
// Rε-All can never be within ε of all members (no false negatives).
func TestEpsRectConservativeL2(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		eps := 0.5 + r.Float64()*2
		seed := Point{r.Float64() * 10, r.Float64() * 10}
		e := NewEpsRect(seed, eps)
		members := []Point{seed}
		for i := 0; i < 30; i++ {
			c := Point{r.Float64() * 10, r.Float64() * 10}
			if !e.ContainsPoint(c) {
				continue
			}
			ok := true
			for _, m := range members {
				if !Within(L2, c, m, eps) {
					ok = false
					break
				}
			}
			if ok {
				e.Add(c)
				members = append(members, c)
			}
		}
		for i := 0; i < 50; i++ {
			probe := Point{r.Float64() * 10, r.Float64() * 10}
			if e.ContainsPoint(probe) {
				continue
			}
			for _, m := range members {
				if !Within(L2, probe, m, eps) {
					goto next
				}
			}
			t.Fatalf("L2 false negative: probe outside Rε-All but within ε of all members")
		next:
		}
	}
}

// TestEpsRectLowerBound confirms §6.3's observation that the rectangle never
// shrinks below ε per side for a legitimate clique.
func TestEpsRectLowerBound(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	eps := 1.0
	e := NewEpsRect(Point{0, 0}, eps)
	for i := 0; i < 500; i++ {
		c := Point{r.Float64()*4 - 2, r.Float64()*4 - 2}
		if e.ContainsPoint(c) {
			e.Add(c)
		}
	}
	b := e.Bound()
	for axis := 0; axis < 2; axis++ {
		if b.Side(axis) < eps-1e-12 {
			t.Fatalf("Rε-All side %d shrank below ε: %v", axis, b.Side(axis))
		}
	}
}

func TestEpsRectMBRInsideBound(t *testing.T) {
	// A clique's member MBR is always inside Rε-All (every member lies in
	// every other member's ε-box).
	e := NewEpsRect(Point{0, 0}, 3)
	for _, p := range []Point{{1, 1}, {2, 0}, {0, 2}, {-1, -1}} {
		if e.ContainsPoint(p) {
			e.Add(p)
		}
	}
	if !e.Bound().ContainsRect(e.MBR()) {
		t.Fatalf("MBR %v escapes Rε-All %v", e.MBR(), e.Bound())
	}
}

func TestEpsRectRebuildAfterRemoval(t *testing.T) {
	eps := 2.0
	a := Point{0, 0}
	b := Point{1.5, 0}
	e := NewEpsRect(a, eps)
	e.Add(b)
	shrunk := e.Bound()
	// Removing b must grow the rectangle back to a's box.
	e.Rebuild([]Point{a})
	if !e.Bound().Equal(BoxAround(a, eps)) {
		t.Fatalf("Rebuild = %v, want %v", e.Bound(), BoxAround(a, eps))
	}
	if e.Bound().Equal(shrunk) {
		t.Fatal("Rebuild did not grow the rectangle")
	}
	e.Rebuild(nil)
	if e.Len() != 0 || e.ContainsPoint(a) {
		t.Fatal("empty rebuild should contain nothing")
	}
}

func TestEpsRectAddPanicsOnForeignPoint(t *testing.T) {
	e := NewEpsRect(Point{0, 0}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Add accepted a point disjoint from the ε-All rectangle")
		}
	}()
	e.Add(Point{10, 10})
}

func TestEpsRectAddToEmpty(t *testing.T) {
	e := NewEpsRect(Point{0, 0}, 1)
	e.Rebuild(nil)
	e.Add(Point{5, 5})
	if e.Len() != 1 || !e.Bound().Equal(BoxAround(Point{5, 5}, 1)) {
		t.Fatal("Add to an emptied EpsRect should reseed it")
	}
}
