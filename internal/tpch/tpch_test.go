package tpch

import (
	"reflect"
	"testing"

	"sgb/internal/engine"
)

func TestGenerateCardinalities(t *testing.T) {
	d := Generate(Config{SF: 1, CustomersPerSF: 300, Seed: 1})
	c := d.Counts()
	if c["customer"] != 300 {
		t.Fatalf("customers = %d", c["customer"])
	}
	if c["orders"] != 3000 {
		t.Fatalf("orders = %d (want 10x customers)", c["orders"])
	}
	if c["nation"] != 25 {
		t.Fatalf("nations = %d", c["nation"])
	}
	// Lineitems average ~4 per order.
	ratio := float64(c["lineitem"]) / float64(c["orders"])
	if ratio < 2.5 || ratio > 5.5 {
		t.Fatalf("lineitem/order ratio = %v", ratio)
	}
	if c["partsupp"] == 0 || c["supplier"] == 0 {
		t.Fatal("supplier-side tables empty")
	}
	// Scale factor scales linearly.
	d2 := Generate(Config{SF: 2, CustomersPerSF: 300, Seed: 1})
	if d2.Counts()["customer"] != 600 || d2.Counts()["orders"] != 6000 {
		t.Fatalf("SF=2 counts: %v", d2.Counts())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{SF: 0.5, CustomersPerSF: 200, Seed: 7})
	b := Generate(Config{SF: 0.5, CustomersPerSF: 200, Seed: 7})
	if !reflect.DeepEqual(a.Customers, b.Customers) || !reflect.DeepEqual(a.Lineitems, b.Lineitems) {
		t.Fatal("same seed produced different data")
	}
	c := Generate(Config{SF: 0.5, CustomersPerSF: 200, Seed: 8})
	if reflect.DeepEqual(a.Customers, c.Customers) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestValueRanges(t *testing.T) {
	d := Generate(Config{SF: 1, CustomersPerSF: 200, Seed: 2})
	for _, r := range d.Customers {
		bal := r[2].F
		if bal < -999.99 || bal > 9999.99 {
			t.Fatalf("c_acctbal out of spec range: %v", bal)
		}
	}
	for _, r := range d.Lineitems {
		if q := r[3].F; q < 1 || q > 50 {
			t.Fatalf("l_quantity out of range: %v", q)
		}
		if disc := r[5].F; disc < 0 || disc > 0.10 {
			t.Fatalf("l_discount out of range: %v", disc)
		}
		ship, receipt := r[6].I, r[7].I
		if receipt <= ship {
			t.Fatalf("receipt %d not after ship %d", receipt, ship)
		}
		if ship < dateLo || receipt > dateHi+200 {
			t.Fatalf("dates out of range: %d..%d", ship, receipt)
		}
	}
}

func TestForeignKeysValid(t *testing.T) {
	d := Generate(Config{SF: 1, CustomersPerSF: 150, Seed: 3})
	nCust := int64(len(d.Customers))
	nSupp := int64(len(d.Suppliers))
	orderKeys := map[int64]bool{}
	for _, r := range d.Orders {
		orderKeys[r[0].I] = true
		if ck := r[1].I; ck < 1 || ck > nCust {
			t.Fatalf("o_custkey %d out of range", ck)
		}
	}
	for _, r := range d.Lineitems {
		if !orderKeys[r[0].I] {
			t.Fatalf("l_orderkey %d has no order", r[0].I)
		}
		if sk := r[2].I; sk < 1 || sk > nSupp {
			t.Fatalf("l_suppkey %d out of range", sk)
		}
	}
	for _, r := range d.PartSupps {
		if sk := r[1].I; sk < 1 || sk > nSupp {
			t.Fatalf("ps_suppkey %d out of range", sk)
		}
	}
}

func TestLoadAndQuery(t *testing.T) {
	db := engine.NewDB()
	d := Generate(Config{SF: 1, CustomersPerSF: 120, Seed: 4})
	if err := d.Load(db); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT count(*) FROM customer")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 120 {
		t.Fatalf("customer count via SQL = %v", res.Rows[0][0])
	}
	// A representative join + aggregate exercises the loaded keys.
	res, err = db.Query(`
		SELECT count(*), sum(o_totalprice)
		FROM customer, orders
		WHERE c_custkey = o_custkey AND c_acctbal > 0`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I == 0 {
		t.Fatal("join produced no rows")
	}
}
