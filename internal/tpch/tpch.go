// Package tpch generates deterministic TPC-H-style data for the evaluation
// queries of the paper's §8 (Table 2, Figures 10 and 12).
//
// It is a substitution for the official dbgen tool: the schema is restricted
// to exactly the columns the evaluation queries touch, the cardinality
// ratios between tables follow TPC-H (customers : orders : lineitems ≈
// 1 : 10 : 40, suppliers at 1/15 of customers, partsupp at 4 parts per
// supplier ratio), and the row budget is scaled so a laptop can sweep scale
// factors in seconds. Value distributions (uniform keys, account balances in
// [-999.99, 9999.99], prices, discounts, date ranges) mirror the TPC-H
// specification.
package tpch

import (
	"fmt"
	"math/rand"

	"sgb/internal/engine"
)

// Config parameterizes a generation run.
type Config struct {
	// SF is the scale factor; table sizes grow linearly with it, exactly
	// like TPC-H's dbgen.
	SF float64
	// CustomersPerSF is the customer rows per unit scale factor. The TPC-H
	// value is 150000; the default here is 1500 (a 1:100 shrink) so that
	// SF sweeps up to 60 stay laptop-sized. Set it to 150000 to generate
	// spec-sized data.
	CustomersPerSF int
	// Seed makes generation reproducible.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.SF <= 0 {
		c.SF = 1
	}
	if c.CustomersPerSF <= 0 {
		c.CustomersPerSF = 1500
	}
	return c
}

// Data holds the generated relations as engine rows.
type Data struct {
	Nations   []engine.Row // n_nationkey, n_name
	Customers []engine.Row // c_custkey, c_name, c_acctbal, c_nationkey
	Orders    []engine.Row // o_orderkey, o_custkey, o_totalprice, o_orderdate
	Lineitems []engine.Row // l_orderkey, l_partkey, l_suppkey, l_quantity, l_extendedprice, l_discount, l_shipdate, l_receiptdate
	Suppliers []engine.Row // s_suppkey, s_name, s_acctbal, s_nationkey
	PartSupps []engine.Row // ps_partkey, ps_suppkey, ps_supplycost, ps_availqty
}

// Counts summarizes the generated cardinalities.
func (d *Data) Counts() map[string]int {
	return map[string]int{
		"nation":   len(d.Nations),
		"customer": len(d.Customers),
		"orders":   len(d.Orders),
		"lineitem": len(d.Lineitems),
		"supplier": len(d.Suppliers),
		"partsupp": len(d.PartSupps),
	}
}

var nationNames = []string{
	"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
	"FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
	"JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
	"ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
	"UNITED STATES",
}

// Date range used by TPC-H: 1992-01-01 .. 1998-12-31, expressed as day
// numbers since 1970-01-01.
const (
	dateLo = 8035  // 1992-01-01
	dateHi = 10591 // 1998-12-31
)

// Generate produces a dataset for the given configuration.
func Generate(cfg Config) *Data {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	d := &Data{}

	nCustomers := int(float64(cfg.CustomersPerSF) * cfg.SF)
	if nCustomers < 1 {
		nCustomers = 1
	}
	nOrders := nCustomers * 10
	nSuppliers := nCustomers / 15
	if nSuppliers < 1 {
		nSuppliers = 1
	}
	nParts := nSuppliers * 20
	if nParts < 1 {
		nParts = 1
	}

	for i, name := range nationNames {
		d.Nations = append(d.Nations, engine.Row{
			engine.NewInt(int64(i)), engine.NewString(name),
		})
	}

	for i := 1; i <= nCustomers; i++ {
		d.Customers = append(d.Customers, engine.Row{
			engine.NewInt(int64(i)),
			engine.NewString(fmt.Sprintf("Customer#%09d", i)),
			engine.NewFloat(roundCents(-999.99 + r.Float64()*(9999.99+999.99))),
			engine.NewInt(int64(r.Intn(len(nationNames)))),
		})
	}

	for i := 1; i <= nSuppliers; i++ {
		d.Suppliers = append(d.Suppliers, engine.Row{
			engine.NewInt(int64(i)),
			engine.NewString(fmt.Sprintf("Supplier#%09d", i)),
			engine.NewFloat(roundCents(-999.99 + r.Float64()*(9999.99+999.99))),
			engine.NewInt(int64(r.Intn(len(nationNames)))),
		})
	}

	// partsupp: each part is stocked by 4 suppliers (TPC-H ratio).
	for p := 1; p <= nParts; p++ {
		for s := 0; s < 4; s++ {
			supp := (p+s*(nSuppliers/4+1))%nSuppliers + 1
			d.PartSupps = append(d.PartSupps, engine.Row{
				engine.NewInt(int64(p)),
				engine.NewInt(int64(supp)),
				engine.NewFloat(roundCents(1 + r.Float64()*999)),
				engine.NewInt(int64(1 + r.Intn(9999))),
			})
		}
	}

	// orders and lineitems: 1..7 lineitems per order (TPC-H averages 4).
	lineNo := 0
	for o := 1; o <= nOrders; o++ {
		cust := int64(1 + r.Intn(nCustomers))
		orderDate := int64(dateLo + r.Intn(dateHi-dateLo-60))
		nLines := 1 + r.Intn(7)
		var total float64
		for l := 0; l < nLines; l++ {
			part := int64(1 + r.Intn(nParts))
			// One of the part's four suppliers.
			supp := (int(part)+r.Intn(4)*(nSuppliers/4+1))%nSuppliers + 1
			qty := float64(1 + r.Intn(50))
			price := roundCents(qty * (900 + r.Float64()*100 + float64(part%1000)))
			disc := float64(r.Intn(11)) / 100
			ship := orderDate + int64(1+r.Intn(121))
			receipt := ship + int64(1+r.Intn(30))
			d.Lineitems = append(d.Lineitems, engine.Row{
				engine.NewInt(int64(o)),
				engine.NewInt(part),
				engine.NewInt(int64(supp)),
				engine.NewFloat(qty),
				engine.NewFloat(price),
				engine.NewFloat(disc),
				engine.NewInt(ship),
				engine.NewInt(receipt),
			})
			total += price * (1 - disc)
			lineNo++
		}
		d.Orders = append(d.Orders, engine.Row{
			engine.NewInt(int64(o)),
			engine.NewInt(cust),
			engine.NewFloat(roundCents(total)),
			engine.NewInt(orderDate),
		})
	}
	return d
}

func roundCents(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}

// Schemas returns the CREATE TABLE layouts of the TPC-H subset.
func Schemas() map[string]engine.Schema {
	return map[string]engine.Schema{
		"nation": {
			{Name: "n_nationkey", T: engine.TypeInt},
			{Name: "n_name", T: engine.TypeString},
		},
		"customer": {
			{Name: "c_custkey", T: engine.TypeInt},
			{Name: "c_name", T: engine.TypeString},
			{Name: "c_acctbal", T: engine.TypeFloat},
			{Name: "c_nationkey", T: engine.TypeInt},
		},
		"orders": {
			{Name: "o_orderkey", T: engine.TypeInt},
			{Name: "o_custkey", T: engine.TypeInt},
			{Name: "o_totalprice", T: engine.TypeFloat},
			{Name: "o_orderdate", T: engine.TypeInt},
		},
		"lineitem": {
			{Name: "l_orderkey", T: engine.TypeInt},
			{Name: "l_partkey", T: engine.TypeInt},
			{Name: "l_suppkey", T: engine.TypeInt},
			{Name: "l_quantity", T: engine.TypeFloat},
			{Name: "l_extendedprice", T: engine.TypeFloat},
			{Name: "l_discount", T: engine.TypeFloat},
			{Name: "l_shipdate", T: engine.TypeInt},
			{Name: "l_receiptdate", T: engine.TypeInt},
		},
		"supplier": {
			{Name: "s_suppkey", T: engine.TypeInt},
			{Name: "s_name", T: engine.TypeString},
			{Name: "s_acctbal", T: engine.TypeFloat},
			{Name: "s_nationkey", T: engine.TypeInt},
		},
		"partsupp": {
			{Name: "ps_partkey", T: engine.TypeInt},
			{Name: "ps_suppkey", T: engine.TypeInt},
			{Name: "ps_supplycost", T: engine.TypeFloat},
			{Name: "ps_availqty", T: engine.TypeInt},
		},
	}
}

// Load creates the TPC-H tables in db and bulk-loads the dataset.
func (d *Data) Load(db *engine.DB) error {
	cat := db.Catalog()
	for name, schema := range Schemas() {
		if _, err := cat.Create(name, schema); err != nil {
			return err
		}
	}
	load := func(name string, rows []engine.Row) error {
		t, err := cat.Get(name)
		if err != nil {
			return err
		}
		return t.Insert(rows...)
	}
	if err := load("nation", d.Nations); err != nil {
		return err
	}
	if err := load("customer", d.Customers); err != nil {
		return err
	}
	if err := load("orders", d.Orders); err != nil {
		return err
	}
	if err := load("lineitem", d.Lineitems); err != nil {
		return err
	}
	if err := load("supplier", d.Suppliers); err != nil {
		return err
	}
	return load("partsupp", d.PartSupps)
}
