package bench

import (
	"fmt"
	"math"
	"math/rand"

	"sgb/internal/core"
	"sgb/internal/engine"
	"sgb/internal/geom"
	"sgb/internal/tpch"
)

// UniformPoints generates n points uniform in [0,1]^dim.
func UniformPoints(n, dim int, seed int64) []geom.Point {
	return UniformPointsSpan(n, dim, seed, 1)
}

// UniformPointsSpan generates n points uniform in [0,span]^dim.
func UniformPointsSpan(n, dim int, seed int64, span float64) []geom.Point {
	r := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = r.Float64() * span
		}
		pts[i] = p
	}
	return pts
}

// SweepPoints generates the 2-D workload for the ε sweeps and the
// complexity ladder. Grouping attributes in the paper's workload (account
// balances, aggregated totals) repeat heavily, so points concentrate on
// tight sites of ~50 near-duplicates each, scattered over a domain that
// grows with sqrt(n) (constant site density). At ε=0.1 each site is its own
// clique; larger ε progressively merges nearby sites, so the group count —
// and with it the All-Pairs and Bounds-Checking runtimes — falls as ε grows,
// the regime of the paper's Figure 9.
func SweepPoints(n int, seed int64) []geom.Point {
	span := math.Sqrt(float64(n)) / 6
	if span < 1 {
		span = 1
	}
	sites := n / 50
	if sites < 1 {
		sites = 1
	}
	r := rand.New(rand.NewSource(seed))
	centers := make([]geom.Point, sites)
	for i := range centers {
		centers[i] = geom.Point{r.Float64() * span, r.Float64() * span}
	}
	// Site radius 0.03 keeps every site an L2 clique at the smallest swept
	// ε (0.1): the in-site diameter is at most ~0.085.
	const jitter = 0.03
	pts := make([]geom.Point, n)
	for i := range pts {
		c := centers[r.Intn(sites)]
		pts[i] = geom.Point{
			c[0] + (r.Float64()*2-1)*jitter,
			c[1] + (r.Float64()*2-1)*jitter,
		}
	}
	return pts
}

// NewTPCHDB generates TPC-H-style data at the given scale factor and loads
// it into a fresh database.
func NewTPCHDB(sf float64, customersPerSF int, seed int64) (*engine.DB, error) {
	db := engine.NewDB()
	d := tpch.Generate(tpch.Config{SF: sf, CustomersPerSF: customersPerSF, Seed: seed})
	if err := d.Load(db); err != nil {
		return nil, err
	}
	return db, nil
}

// QuerySpec is one evaluation query of the paper's Table 2, adapted to this
// engine's dialect and the scaled-down generator (normalizing divisors keep
// the two grouping attributes in roughly [0,1] so the paper's ε values are
// meaningful).
type QuerySpec struct {
	ID          string
	Description string
	SQL         string
}

// overlapSQL renders the ON-OVERLAP clause.
func overlapSQL(ov core.Overlap) string {
	switch ov {
	case core.Eliminate:
		return "ON-OVERLAP ELIMINATE"
	case core.FormNewGroup:
		return "ON-OVERLAP FORM-NEW-GROUP"
	default:
		return "ON-OVERLAP JOIN-ANY"
	}
}

// GB1 is the paper's GB1 (TPC-H Q18 shape): large-volume customers through
// an IN-subquery with HAVING, then an equality Group-By.
func GB1() QuerySpec {
	return QuerySpec{
		ID:          "GB1",
		Description: "large volume customers (Q18 shape, standard Group-By)",
		SQL: `
SELECT c_custkey, sum(o_totalprice)
FROM customer, orders
WHERE c_custkey = o_custkey
  AND o_orderkey IN (SELECT l_orderkey FROM lineitem GROUP BY l_orderkey HAVING sum(l_quantity) > 150)
GROUP BY c_custkey`,
	}
}

// SGB1 groups customers by similar (account balance, buying power) with
// DISTANCE-TO-ALL; SGB2 is the DISTANCE-TO-ANY variant.
func SGB1(eps float64, ov core.Overlap) QuerySpec {
	return QuerySpec{
		ID:          "SGB1",
		Description: "customers with similar buying power and account balance (SGB-All)",
		SQL: fmt.Sprintf(`
SELECT max(ab), min(tp), max(tp), avg(ab), count(*)
FROM (SELECT c_custkey AS ck, c_acctbal / 100.0 AS ab, sum(o_totalprice) / 30000.0 AS tp
      FROM customer, orders
      WHERE c_custkey = o_custkey AND c_acctbal > 100 AND o_totalprice > 30000
      GROUP BY c_custkey, c_acctbal) AS r
GROUP BY ab, tp DISTANCE-TO-ALL L2 WITHIN %g %s`, eps, overlapSQL(ov)),
	}
}

// SGB2 is SGB1 with the DISTANCE-TO-ANY semantics.
func SGB2(eps float64) QuerySpec {
	return QuerySpec{
		ID:          "SGB2",
		Description: "customers with similar buying power and account balance (SGB-Any)",
		SQL: fmt.Sprintf(`
SELECT max(ab), min(tp), max(tp), avg(ab), count(*)
FROM (SELECT c_custkey AS ck, c_acctbal / 100.0 AS ab, sum(o_totalprice) / 30000.0 AS tp
      FROM customer, orders
      WHERE c_custkey = o_custkey AND c_acctbal > 100 AND o_totalprice > 30000
      GROUP BY c_custkey, c_acctbal) AS r
GROUP BY ab, tp DISTANCE-TO-ANY L2 WITHIN %g`, eps),
	}
}

// GB2 is the paper's GB2 (TPC-H Q9 shape): profit by supplier nation.
func GB2() QuerySpec {
	return QuerySpec{
		ID:          "GB2",
		Description: "profit on parts by supplier nation (Q9 shape, standard Group-By)",
		SQL: `
SELECT n_name, sum(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity)
FROM lineitem, partsupp, supplier, nation
WHERE ps_partkey = l_partkey AND ps_suppkey = l_suppkey
  AND s_suppkey = l_suppkey AND s_nationkey = n_nationkey
GROUP BY n_name`,
	}
}

// SGB3 groups parts by similar (profit, shipment time) with DISTANCE-TO-ALL.
func SGB3(eps float64, ov core.Overlap) QuerySpec {
	return QuerySpec{
		ID:          "SGB3",
		Description: "parts with similar profit and shipment time (SGB-All)",
		SQL: fmt.Sprintf(`
SELECT count(*), sum(tprof), sum(stime)
FROM (SELECT ps_partkey AS partkey,
             sum(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) / 500000.0 AS tprof,
             sum(l_receiptdate - l_shipdate) / 500.0 AS stime
      FROM lineitem, partsupp
      WHERE ps_partkey = l_partkey AND ps_suppkey = l_suppkey
      GROUP BY ps_partkey) AS profit
GROUP BY tprof, stime DISTANCE-ALL WITHIN %g USING ltwo %s`, eps, overlapSQL(ov)),
	}
}

// SGB4 is SGB3 with the DISTANCE-TO-ANY semantics.
func SGB4(eps float64) QuerySpec {
	return QuerySpec{
		ID:          "SGB4",
		Description: "parts with similar profit and shipment time (SGB-Any)",
		SQL: fmt.Sprintf(`
SELECT count(*), sum(tprof), sum(stime)
FROM (SELECT ps_partkey AS partkey,
             sum(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) / 500000.0 AS tprof,
             sum(l_receiptdate - l_shipdate) / 500.0 AS stime
      FROM lineitem, partsupp
      WHERE ps_partkey = l_partkey AND ps_suppkey = l_suppkey
      GROUP BY ps_partkey) AS profit
GROUP BY tprof, stime DISTANCE-ANY WITHIN %g USING ltwo`, eps),
	}
}

// GB3 is the paper's GB3 (TPC-H Q15 shape): supplier revenue over a shipping
// window.
func GB3() QuerySpec {
	return QuerySpec{
		ID:          "GB3",
		Description: "top supplier revenue (Q15 shape, standard Group-By)",
		SQL: `
SELECT l_suppkey, sum(l_extendedprice * (1 - l_discount))
FROM lineitem
WHERE l_shipdate > 9131 AND l_shipdate < 9500
GROUP BY l_suppkey`,
	}
}

// SGB5 groups suppliers by similar (revenue, account balance) with
// DISTANCE-TO-ALL.
func SGB5(eps float64, ov core.Overlap) QuerySpec {
	return QuerySpec{
		ID:          "SGB5",
		Description: "suppliers with similar revenue and account balance (SGB-All)",
		SQL: fmt.Sprintf(`
SELECT count(*), sum(trevenue), sum(acctbal)
FROM (SELECT l_suppkey AS suppkey,
             sum(l_extendedprice * (1 - l_discount)) / 10000000.0 AS trevenue,
             max(s_acctbal) / 10000.0 AS acctbal
      FROM lineitem, supplier
      WHERE s_suppkey = l_suppkey AND l_shipdate > 9131 AND l_shipdate < 9500
      GROUP BY l_suppkey) AS r
GROUP BY trevenue, acctbal DISTANCE-ALL WITHIN %g USING ltwo %s`, eps, overlapSQL(ov)),
	}
}

// SGB6 is SGB5 with the DISTANCE-TO-ANY semantics.
func SGB6(eps float64) QuerySpec {
	return QuerySpec{
		ID:          "SGB6",
		Description: "suppliers with similar revenue and account balance (SGB-Any)",
		SQL: fmt.Sprintf(`
SELECT count(*), sum(trevenue), sum(acctbal)
FROM (SELECT l_suppkey AS suppkey,
             sum(l_extendedprice * (1 - l_discount)) / 10000000.0 AS trevenue,
             max(s_acctbal) / 10000.0 AS acctbal
      FROM lineitem, supplier
      WHERE s_suppkey = l_suppkey AND l_shipdate > 9131 AND l_shipdate < 9500
      GROUP BY l_suppkey) AS r
GROUP BY trevenue, acctbal DISTANCE-ANY WITHIN %g USING ltwo`, eps),
	}
}

// AllQueries returns the full Table 2 workload at the given ε and overlap
// clause for the SGB-All queries.
func AllQueries(eps float64, ov core.Overlap) []QuerySpec {
	return []QuerySpec{
		GB1(), SGB1(eps, ov), SGB2(eps),
		GB2(), SGB3(eps, ov), SGB4(eps),
		GB3(), SGB5(eps, ov), SGB6(eps),
	}
}
