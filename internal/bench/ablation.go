package bench

import (
	"fmt"
	"time"

	"sgb/internal/core"
	"sgb/internal/geom"
	"sgb/internal/rtree"
)

// Ablations isolates the effect of the individual design choices in the
// SGB-All/SGB-Any implementation that DESIGN.md calls out:
//
//   - the convex-hull refinement of the L2 rectangle filter (Procedure 6)
//     versus exact member scans,
//   - the distance metric (L∞ exact rectangles vs L2 filtered rectangles vs
//     the L1 extension),
//   - the dimensionality of the grouping attributes (2-D vs 3-D, §4's
//     stated scope),
//   - the R-tree node fan-out backing the on-the-fly index.
func Ablations(sc Scale) ([]*Report, error) {
	var reports []*Report

	// --- Hull refinement -------------------------------------------------
	hullRep := &Report{
		Title:  fmt.Sprintf("Ablation A1 — convex hull refinement (L2, Index, n=%d)", sc.Fig9N),
		Header: []string{"eps", "with hull", "without hull", "hull speedup", "hull tests", "dist comps saved"},
		Notes: []string{
			"without the hull test, an L2 rectangle hit falls back to scanning every group member",
		},
	}
	pts := SweepPoints(sc.Fig9N, sc.Seed)
	for _, eps := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		var withStats, withoutStats core.Stats
		with, err := bestOf3(func() error {
			res, err := core.SGBAll(pts, core.Options{Metric: geom.L2, Eps: eps, Overlap: core.JoinAny, Algorithm: core.IndexBounds})
			if err == nil {
				withStats = res.Stats
			}
			return err
		})
		if err != nil {
			return nil, err
		}
		without, err := bestOf3(func() error {
			res, err := core.SGBAll(pts, core.Options{Metric: geom.L2, Eps: eps, Overlap: core.JoinAny, Algorithm: core.IndexBounds, DisableHullRefine: true})
			if err == nil {
				withoutStats = res.Stats
			}
			return err
		})
		if err != nil {
			return nil, err
		}
		hullRep.AddRow(fmt.Sprintf("%.1f", eps), fmtDur(with), fmtDur(without),
			fmtSpeedup(without, with),
			fmt.Sprintf("%d", withStats.HullTests),
			fmt.Sprintf("%d", withoutStats.DistanceComps-withStats.DistanceComps))
	}
	reports = append(reports, hullRep)

	// --- Metric ----------------------------------------------------------
	metricRep := &Report{
		Title:  fmt.Sprintf("Ablation A2 — distance metric (Index, JOIN-ANY, n=%d, eps=0.3)", sc.Fig9N),
		Header: []string{"metric", "SGB-All", "SGB-Any", "All groups", "Any groups"},
		Notes: []string{
			"L∞ needs no refinement (rectangles are exact); L2 and L1 pay the filter-refine step",
		},
	}
	for _, m := range []geom.Metric{geom.LInf, geom.L2, geom.L1} {
		var allGroups, anyGroups int
		dAll, err := bestOf3(func() error {
			res, err := core.SGBAll(pts, core.Options{Metric: m, Eps: 0.3, Overlap: core.JoinAny, Algorithm: core.IndexBounds})
			if err == nil {
				allGroups = len(res.Groups)
			}
			return err
		})
		if err != nil {
			return nil, err
		}
		dAny, err := bestOf3(func() error {
			res, err := core.SGBAny(pts, core.Options{Metric: m, Eps: 0.3, Algorithm: core.IndexBounds})
			if err == nil {
				anyGroups = len(res.Groups)
			}
			return err
		})
		if err != nil {
			return nil, err
		}
		metricRep.AddRow(m.String(), fmtDur(dAll), fmtDur(dAny),
			fmt.Sprintf("%d", allGroups), fmt.Sprintf("%d", anyGroups))
	}
	reports = append(reports, metricRep)

	// --- Dimensionality --------------------------------------------------
	dimRep := &Report{
		Title:  fmt.Sprintf("Ablation A3 — dimensionality (Index, JOIN-ANY, n=%d, eps=0.3, L2)", sc.Fig9N/2),
		Header: []string{"dim", "SGB-All", "SGB-Any", "refinement"},
		Notes: []string{
			"the hull refinement exists for 2-D; other dimensionalities fall back to exact member scans under L2",
		},
	}
	for _, dim := range []int{1, 2, 3, 4} {
		dpts := UniformPointsSpan(sc.Fig9N/2, dim, sc.Seed, 12)
		dAll, err := bestOf3(func() error {
			_, err := core.SGBAll(dpts, core.Options{Metric: geom.L2, Eps: 0.3, Overlap: core.JoinAny, Algorithm: core.IndexBounds})
			return err
		})
		if err != nil {
			return nil, err
		}
		dAny, err := bestOf3(func() error {
			_, err := core.SGBAny(dpts, core.Options{Metric: geom.L2, Eps: 0.3, Algorithm: core.IndexBounds})
			return err
		})
		if err != nil {
			return nil, err
		}
		refine := "exact member scan"
		switch dim {
		case 1:
			refine = "rectangle exact"
		case 2:
			refine = "convex hull"
		}
		dimRep.AddRow(fmt.Sprintf("%d", dim), fmtDur(dAll), fmtDur(dAny), refine)
	}
	reports = append(reports, dimRep)

	// --- R-tree fan-out ---------------------------------------------------
	fanRep := &Report{
		Title:  fmt.Sprintf("Ablation A4 — R-tree node fan-out (insert+query microbench, n=%d)", sc.Fig9N),
		Header: []string{"min/max entries", "build", "1000 window queries"},
		Notes: []string{
			"the operators use 6/16; smaller nodes split more often, larger nodes scan more per level",
		},
	}
	qpts := SweepPoints(sc.Fig9N, sc.Seed+5)
	for _, fan := range [][2]int{{2, 4}, {4, 8}, {6, 16}, {16, 32}, {32, 64}} {
		var tree *rtree.Tree
		build, err := bestOf3(func() error {
			tree = rtree.NewWithFanout(2, fan[0], fan[1])
			for i, p := range qpts {
				tree.Insert(geom.PointRect(p), int64(i))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		query, err := bestOf3(func() error {
			for i := 0; i < 1000; i++ {
				tree.Search(geom.BoxAround(qpts[i%len(qpts)], 0.3), func(int64) bool { return true })
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		fanRep.AddRow(fmt.Sprintf("%d/%d", fan[0], fan[1]), fmtDur(build), fmtDur(query))
	}
	reports = append(reports, fanRep)

	// --- Insertion-order sensitivity --------------------------------------
	orderRep := &Report{
		Title:  fmt.Sprintf("Ablation A5 — insertion-order sensitivity (n=%d, eps=0.3, L2, Index)", sc.Fig9N/4),
		Header: []string{"permutation", "SGB-All JOIN-ANY groups", "SGB-Any groups"},
		Notes: []string{
			"SGB-All grouping is stream-order dependent (§6, Figure 2); SGB-Any is order-free (connected components)",
		},
	}
	base := SweepPoints(sc.Fig9N/4, sc.Seed)
	perms := [][]geom.Point{base, reversed(base), interleaved(base)}
	names := []string{"input order", "reversed", "interleaved"}
	for i, pp := range perms {
		resAll, err := core.SGBAll(pp, core.Options{Metric: geom.L2, Eps: 0.3, Overlap: core.JoinAny, Algorithm: core.IndexBounds})
		if err != nil {
			return nil, err
		}
		resAny, err := core.SGBAny(pp, core.Options{Metric: geom.L2, Eps: 0.3, Algorithm: core.IndexBounds})
		if err != nil {
			return nil, err
		}
		orderRep.AddRow(names[i], fmt.Sprintf("%d", len(resAll.Groups)), fmt.Sprintf("%d", len(resAny.Groups)))
	}
	reports = append(reports, orderRep)

	return reports, nil
}

func bestOf3(f func() error) (time.Duration, error) {
	var best time.Duration = 1<<63 - 1
	for i := 0; i < 3; i++ {
		d, err := timeIt(f)
		if err != nil {
			return 0, err
		}
		if d < best {
			best = d
		}
	}
	return best, nil
}

func reversed(pts []geom.Point) []geom.Point {
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		out[len(pts)-1-i] = p
	}
	return out
}

func interleaved(pts []geom.Point) []geom.Point {
	out := make([]geom.Point, 0, len(pts))
	for i := 0; i < len(pts); i += 2 {
		out = append(out, pts[i])
	}
	for i := 1; i < len(pts); i += 2 {
		out = append(out, pts[i])
	}
	return out
}
