// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§8): the complexity table (Table 1), the
// TPC-H workload queries (Table 2), the ε sweeps (Figure 9), the data-size
// sweeps (Figure 10), the clustering comparison (Figure 11), and the
// overhead-vs-Group-By measurement (Figure 12).
//
// Each experiment returns a Report — a titled text table plus free-form
// notes — that cmd/sgbbench prints. The absolute numbers depend on the host;
// the shapes (who wins, by what factor, how curves move with ε and n) are
// what reproduce the paper.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"time"
)

// Report is one table of results plus commentary.
type Report struct {
	// Title identifies the paper artifact (e.g. "Figure 9a").
	Title string
	// Header names the columns.
	Header []string
	// Rows holds the formatted cells.
	Rows [][]string
	// Notes carries the expected-shape commentary and any caveats.
	Notes []string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var sb strings.Builder
	sb.WriteString("== " + r.Title + " ==\n")
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(r.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	return sb.String()
}

// timeIt runs f and returns its wall-clock duration.
func timeIt(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}

// fmtDur renders a duration with three significant figures.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// fmtSpeedup renders a speedup factor.
func fmtSpeedup(base, other time.Duration) string {
	if other <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", float64(base)/float64(other))
}

// CSV writes the report as a CSV table (header row first). Notes are
// omitted — CSV output is intended for plotting tools.
func (r *Report) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Header); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FileName derives a filesystem-friendly name for the report.
func (r *Report) FileName() string {
	name := strings.ToLower(r.Title)
	if i := strings.IndexAny(name, "—-("); i > 0 {
		name = name[:i]
	}
	name = strings.TrimSpace(name)
	name = strings.ReplaceAll(name, " ", "_")
	var sb strings.Builder
	for _, c := range name {
		if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' {
			sb.WriteRune(c)
		}
	}
	return sb.String() + ".csv"
}
