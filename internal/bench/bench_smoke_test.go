package bench

import (
	"strings"
	"testing"

	"sgb/internal/core"
)

func smallScale() Scale {
	return Scale{
		Fig9N:          800,
		Fig10SFs:       []float64{0.5, 1},
		CustomersPerSF: 100,
		Fig11Sizes:     []int{500, 1000},
		Table1Ns:       []int{200, 400},
		Seed:           1,
	}
}

func TestTable2AllQueriesRun(t *testing.T) {
	rep, err := Table2(smallScale(), 1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 9 {
		t.Fatalf("expected 9 workload queries, got %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row[2] == "0" && strings.HasPrefix(row[0], "GB") {
			t.Errorf("query %s returned no rows", row[0])
		}
	}
	out := rep.String()
	for _, id := range []string{"GB1", "SGB1", "SGB2", "GB2", "SGB3", "SGB4", "GB3", "SGB5", "SGB6"} {
		if !strings.Contains(out, id) {
			t.Errorf("report missing query %s:\n%s", id, out)
		}
	}
}

func TestFig9Runs(t *testing.T) {
	reports, err := Fig9(smallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("expected 4 sub-figures, got %d", len(reports))
	}
	for _, r := range reports {
		if len(r.Rows) != len(epsSweep) {
			t.Errorf("%s: %d rows, want %d", r.Title, len(r.Rows), len(epsSweep))
		}
	}
}

func TestFig10Runs(t *testing.T) {
	reports, err := Fig10(smallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("expected 4 sub-figures, got %d", len(reports))
	}
}

func TestFig11Runs(t *testing.T) {
	reports, err := Fig11(smallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("expected 2 sub-figures, got %d", len(reports))
	}
}

func TestFig12Runs(t *testing.T) {
	reports, err := Fig12(smallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("expected 2 sub-figures, got %d", len(reports))
	}
}

func TestTable1Runs(t *testing.T) {
	rep, err := Table1(smallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 11 {
		t.Fatalf("expected 11 variants, got %d", len(rep.Rows))
	}
}

func TestQuerySpecsParse(t *testing.T) {
	// Every workload query must at least parse.
	for _, ov := range []core.Overlap{core.JoinAny, core.Eliminate, core.FormNewGroup} {
		for _, q := range AllQueries(0.3, ov) {
			db, err := NewTPCHDB(0.2, 50, 1)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := db.Query(q.SQL); err != nil {
				t.Errorf("%s (%v): %v", q.ID, ov, err)
			}
		}
	}
}

func TestNormalize(t *testing.T) {
	pts := UniformPoints(100, 2, 3)
	for i := range pts {
		pts[i][0] = pts[i][0]*50 + 25
		pts[i][1] = pts[i][1]*10 - 120
	}
	norm := normalize(pts)
	for _, p := range norm {
		if p[0] < 0 || p[0] > 1 || p[1] < 0 || p[1] > 1 {
			t.Fatalf("normalized point out of range: %v", p)
		}
	}
}

func TestReportFormatting(t *testing.T) {
	r := &Report{Title: "T", Header: []string{"a", "bb"}, Notes: []string{"n1"}}
	r.AddRow("1", "2")
	out := r.String()
	for _, want := range []string{"== T ==", "a", "bb", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}
}

func TestAblationsRun(t *testing.T) {
	sc := smallScale()
	reports, err := Ablations(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 5 {
		t.Fatalf("expected 5 ablation reports, got %d", len(reports))
	}
	for _, r := range reports {
		if len(r.Rows) == 0 {
			t.Errorf("%s: empty report", r.Title)
		}
	}
}
