package bench

import (
	"fmt"
	"math"
	"time"

	"sgb/internal/checkin"
	"sgb/internal/cluster"
	"sgb/internal/core"
	"sgb/internal/engine"
	"sgb/internal/geom"
)

// Scale bundles the knobs that trade fidelity for wall-clock time. The
// defaults keep the full suite under a couple of minutes on a laptop; raise
// them to approach the paper's data sizes.
type Scale struct {
	// Fig9N is the point count for the ε sweeps (paper: 500K records).
	Fig9N int
	// Fig10SFs are the scale factors for the data-size sweeps (paper: up
	// to 60).
	Fig10SFs []float64
	// CustomersPerSF scales the TPC-H generator (see tpch.Config).
	CustomersPerSF int
	// Fig11Sizes are the check-in dataset sizes (paper: 0.5M–3M).
	Fig11Sizes []int
	// Table1Ns are the input sizes used to fit empirical growth rates.
	Table1Ns []int
	// Seed drives every generator.
	Seed int64
}

// DefaultScale is a laptop-friendly configuration.
func DefaultScale() Scale {
	return Scale{
		Fig9N:          20000,
		Fig10SFs:       []float64{1, 2, 4, 8, 16, 32},
		CustomersPerSF: 300,
		Fig11Sizes:     []int{5000, 10000, 20000, 40000},
		Table1Ns:       []int{1000, 2000, 4000, 8000},
		Seed:           1,
	}
}

var epsSweep = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}

func overlapName(ov core.Overlap) string { return ov.String() }

// Fig9 reproduces Figure 9: query time versus similarity threshold ε for
// the SGB-All variants (9a JOIN-ANY, 9b ELIMINATE, 9c FORM-NEW-GROUP) under
// All-Pairs / Bounds-Checking / on-the-fly Index, and for SGB-Any (9d) under
// All-Pairs / on-the-fly Index. L2 metric, unskewed data, like the paper.
func Fig9(sc Scale) ([]*Report, error) {
	pts := SweepPoints(sc.Fig9N, sc.Seed)
	var reports []*Report
	for fig, ov := range map[string]core.Overlap{
		"Figure 9a (SGB-All JOIN-ANY)":       core.JoinAny,
		"Figure 9b (SGB-All ELIMINATE)":      core.Eliminate,
		"Figure 9c (SGB-All FORM-NEW-GROUP)": core.FormNewGroup,
	} {
		notes := []string{
			"expected shape: Index << Bounds-Checking << All-Pairs; runtimes fall as ε grows (fewer groups)",
		}
		if ov == core.JoinAny {
			notes = append(notes,
				"under JOIN-ANY, Procedure 2's early break makes All-Pairs O(n·|G|) too, so it tracks Bounds-Checking;",
				"the paper's full gap appears for ELIMINATE and FORM-NEW-GROUP, which must scan every member")
		}
		rep := &Report{
			Title:  fmt.Sprintf("%s — runtime vs ε, n=%d, L2", fig, sc.Fig9N),
			Header: []string{"eps", "All-Pairs", "Bounds-Checking", "on-the-fly Index", "idx speedup vs AP", "groups"},
			Notes:  notes,
		}
		for _, eps := range epsSweep {
			times := map[core.Algorithm]time.Duration{}
			var groups int
			for _, alg := range []core.Algorithm{core.AllPairs, core.BoundsChecking, core.IndexBounds} {
				opt := core.Options{Metric: geom.L2, Eps: eps, Overlap: ov, Algorithm: alg}
				var res *core.Result
				d, err := timeIt(func() error {
					var err error
					res, err = core.SGBAll(pts, opt)
					return err
				})
				if err != nil {
					return nil, err
				}
				times[alg] = d
				groups = len(res.Groups)
			}
			rep.AddRow(
				fmt.Sprintf("%.1f", eps),
				fmtDur(times[core.AllPairs]),
				fmtDur(times[core.BoundsChecking]),
				fmtDur(times[core.IndexBounds]),
				fmtSpeedup(times[core.AllPairs], times[core.IndexBounds]),
				fmt.Sprintf("%d", groups),
			)
		}
		reports = append(reports, rep)
	}
	// Stable ordering: 9a, 9b, 9c were inserted from a map; sort by title.
	sortReports(reports)

	rep := &Report{
		Title:  fmt.Sprintf("Figure 9d (SGB-Any) — runtime vs ε, n=%d, L2", sc.Fig9N),
		Header: []string{"eps", "All-Pairs", "on-the-fly Index", "speedup", "groups"},
		Notes: []string{
			"expected shape: Index ~flat and 2-3 orders of magnitude below All-Pairs",
		},
	}
	for _, eps := range epsSweep {
		opt := core.Options{Metric: geom.L2, Eps: eps, Algorithm: core.AllPairs}
		var res *core.Result
		dAP, err := timeIt(func() error {
			var err error
			res, err = core.SGBAny(pts, opt)
			return err
		})
		if err != nil {
			return nil, err
		}
		opt.Algorithm = core.IndexBounds
		dIX, err := timeIt(func() error {
			var err error
			res, err = core.SGBAny(pts, opt)
			return err
		})
		if err != nil {
			return nil, err
		}
		rep.AddRow(fmt.Sprintf("%.1f", eps), fmtDur(dAP), fmtDur(dIX),
			fmtSpeedup(dAP, dIX), fmt.Sprintf("%d", len(res.Groups)))
	}
	reports = append(reports, rep)
	return reports, nil
}

func sortReports(rs []*Report) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Title < rs[j-1].Title; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// Fig10 reproduces Figure 10: SGB operator time versus data size (TPC-H
// scale factor) at ε=0.2 for the SGB-All variants under Bounds-Checking vs
// the on-the-fly Index (10a-c) and SGB-Any under All-Pairs vs the Index
// (10d). Following §8.3 ("we focus on the time taken by SGB and hence
// disregard the data preprocessing time"), the SGB1 derived table — the
// per-customer (account balance, buying power) pairs — is materialized
// through the SQL pipeline once per scale factor, and only the grouping
// operator itself is timed.
func Fig10(sc Scale) ([]*Report, error) {
	const eps = 0.2
	subAll := []struct {
		title string
		ov    core.Overlap
	}{
		{"Figure 10a", core.JoinAny},
		{"Figure 10b", core.Eliminate},
		{"Figure 10c", core.FormNewGroup},
	}
	reports := make([]*Report, 4)
	for i, s := range subAll {
		reports[i] = &Report{
			Title:  fmt.Sprintf("%s (SGB-All %s) — runtime vs scale factor, eps=%.1f", s.title, overlapName(s.ov), eps),
			Header: []string{"SF", "rows grouped", "Bounds-Checking", "on-the-fly Index", "idx speedup"},
			Notes: []string{
				"expected shape: Index grows steadily and stays below Bounds-Checking; gap widens with SF",
			},
		}
	}
	reports[3] = &Report{
		Title:  fmt.Sprintf("Figure 10d (SGB-Any) — runtime vs scale factor, eps=%.1f", eps),
		Header: []string{"SF", "rows grouped", "All-Pairs", "on-the-fly Index", "speedup"},
		Notes: []string{
			"expected shape: All-Pairs grows quadratically, Index nearly linearly; speedup grows with SF",
		},
	}

	// One scale factor at a time: each database is released before the next
	// is generated, so GC pressure from the larger datasets does not bleed
	// into the smaller measurements.
	for _, sf := range sc.Fig10SFs {
		pts, err := sgb1Points(sf, sc.CustomersPerSF, sc.Seed)
		if err != nil {
			return nil, err
		}
		for i, s := range subAll {
			dBC, err := bestOfAll(pts, eps, s.ov, core.BoundsChecking)
			if err != nil {
				return nil, err
			}
			dIX, err := bestOfAll(pts, eps, s.ov, core.IndexBounds)
			if err != nil {
				return nil, err
			}
			reports[i].AddRow(fmt.Sprintf("%g", sf), fmt.Sprintf("%d", len(pts)),
				fmtDur(dBC), fmtDur(dIX), fmtSpeedup(dBC, dIX))
		}
		dAP, err := bestOfAny(pts, eps, core.AllPairs)
		if err != nil {
			return nil, err
		}
		dIX, err := bestOfAny(pts, eps, core.IndexBounds)
		if err != nil {
			return nil, err
		}
		reports[3].AddRow(fmt.Sprintf("%g", sf), fmt.Sprintf("%d", len(pts)),
			fmtDur(dAP), fmtDur(dIX), fmtSpeedup(dAP, dIX))
	}
	return reports, nil
}

// sgb1Points materializes the grouping attributes of SGB1's derived table —
// one (account balance, buying power) point per qualifying customer —
// through the full SQL pipeline.
func sgb1Points(sf float64, customersPerSF int, seed int64) ([]geom.Point, error) {
	db, err := NewTPCHDB(sf, customersPerSF, seed)
	if err != nil {
		return nil, err
	}
	res, err := db.Query(`
		SELECT c_acctbal / 100.0 AS ab, sum(o_totalprice) / 30000.0 AS tp
		FROM customer, orders
		WHERE c_custkey = o_custkey AND c_acctbal > 100 AND o_totalprice > 30000
		GROUP BY c_custkey, c_acctbal`)
	if err != nil {
		return nil, err
	}
	pts := make([]geom.Point, len(res.Rows))
	for i, r := range res.Rows {
		ab, err := r[0].AsFloat()
		if err != nil {
			return nil, err
		}
		tp, err := r[1].AsFloat()
		if err != nil {
			return nil, err
		}
		pts[i] = geom.Point{ab, tp}
	}
	return pts, nil
}

// bestOfAll times core SGB-All three times and keeps the fastest run.
func bestOfAll(pts []geom.Point, eps float64, ov core.Overlap, alg core.Algorithm) (time.Duration, error) {
	best := time.Duration(math.MaxInt64)
	for i := 0; i < 3; i++ {
		d, err := timeIt(func() error {
			_, err := core.SGBAll(pts, core.Options{Metric: geom.L2, Eps: eps, Overlap: ov, Algorithm: alg})
			return err
		})
		if err != nil {
			return 0, err
		}
		if d < best {
			best = d
		}
	}
	return best, nil
}

// bestOfAny times core SGB-Any three times and keeps the fastest run.
func bestOfAny(pts []geom.Point, eps float64, alg core.Algorithm) (time.Duration, error) {
	best := time.Duration(math.MaxInt64)
	for i := 0; i < 3; i++ {
		d, err := timeIt(func() error {
			_, err := core.SGBAny(pts, core.Options{Metric: geom.L2, Eps: eps, Algorithm: alg})
			return err
		})
		if err != nil {
			return 0, err
		}
		if d < best {
			best = d
		}
	}
	return best, nil
}

// bestOfQuery runs the query three times under the given SGB algorithm and
// returns the fastest run, damping scheduler and GC noise.
func bestOfQuery(db *engine.DB, alg core.Algorithm, sql string) (time.Duration, error) {
	db.SetSGBAlgorithm(alg)
	best := time.Duration(math.MaxInt64)
	for i := 0; i < 3; i++ {
		d, err := timeIt(func() error { _, err := db.Query(sql); return err })
		if err != nil {
			return 0, err
		}
		if d < best {
			best = d
		}
	}
	return best, nil
}

// Fig11 reproduces Figure 11: SGB versus the clustering baselines (DBSCAN,
// BIRCH, K-means with K=20 and K=40) on skewed check-in data. Two seeds
// stand in for the Brightkite (11a) and Gowalla (11b) datasets.
//
// All algorithms run over the same in-memory points and share the same
// R-tree substrate where applicable, so the measured gap reflects the
// algorithmic difference the paper describes: the SGB operators build their
// groups in a single streaming pass using group bounds and an on-the-fly
// index, while the clustering algorithms enumerate full ε-neighbourhoods
// (DBSCAN), iterate to convergence (K-means), or build and re-cluster a
// summary (BIRCH). ε is city-block sized relative to the hotspot spread.
func Fig11(sc Scale) ([]*Report, error) {
	const eps = 0.005 // degrees: city-block-scale grouping
	var reports []*Report
	for i, name := range []string{"Figure 11a (Brightkite-like)", "Figure 11b (Gowalla-like)"} {
		seed := sc.Seed + int64(i)*97
		rep := &Report{
			Title: name + " — SGB vs clustering runtime (operator level)",
			Header: []string{"n", "DBSCAN", "BIRCH", "K-means(40)", "K-means(20)",
				"SGB-All FN", "SGB-All EL", "SGB-All JA", "SGB-Any", "DBSCAN / SGB-Any"},
			Notes: []string{
				"expected shape: the SGB variants sit below the clustering algorithms, and the gap to the",
				"density-based baseline (DBSCAN, semantically closest to SGB-Any) grows with n",
			},
		}
		for _, n := range sc.Fig11Sizes {
			pts := checkin.Points(checkin.Generate(checkin.Config{N: n, Seed: seed}))
			dDBSCAN, err := timeIt(func() error {
				_, err := cluster.DBSCAN(pts, geom.L2, eps, 4)
				return err
			})
			if err != nil {
				return nil, err
			}
			dBIRCH, err := timeIt(func() error {
				_, err := cluster.BIRCH(pts, 4*eps, 8, 40, seed)
				return err
			})
			if err != nil {
				return nil, err
			}
			dKM40, err := timeIt(func() error {
				_, err := cluster.KMeans(pts, 40, 100, seed)
				return err
			})
			if err != nil {
				return nil, err
			}
			dKM20, err := timeIt(func() error {
				_, err := cluster.KMeans(pts, 20, 100, seed)
				return err
			})
			if err != nil {
				return nil, err
			}
			dFN, err := bestOfAll(pts, eps, core.FormNewGroup, core.IndexBounds)
			if err != nil {
				return nil, err
			}
			dEL, err := bestOfAll(pts, eps, core.Eliminate, core.IndexBounds)
			if err != nil {
				return nil, err
			}
			dJA, err := bestOfAll(pts, eps, core.JoinAny, core.IndexBounds)
			if err != nil {
				return nil, err
			}
			dANY, err := bestOfAny(pts, eps, core.IndexBounds)
			if err != nil {
				return nil, err
			}
			rep.AddRow(fmt.Sprintf("%d", n),
				fmtDur(dDBSCAN), fmtDur(dBIRCH), fmtDur(dKM40), fmtDur(dKM20),
				fmtDur(dFN), fmtDur(dEL), fmtDur(dJA), fmtDur(dANY),
				fmtSpeedup(dDBSCAN, dANY))
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

func normalize(pts []geom.Point) []geom.Point {
	if len(pts) == 0 {
		return pts
	}
	dim := len(pts[0])
	lo := make([]float64, dim)
	hi := make([]float64, dim)
	copy(lo, pts[0])
	copy(hi, pts[0])
	for _, p := range pts {
		for d, v := range p {
			if v < lo[d] {
				lo[d] = v
			}
			if v > hi[d] {
				hi[d] = v
			}
		}
	}
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		q := make(geom.Point, dim)
		for d, v := range p {
			span := hi[d] - lo[d]
			if span == 0 {
				span = 1
			}
			q[d] = (v - lo[d]) / span
		}
		out[i] = q
	}
	return out
}

// Fig12 reproduces Figure 12: the overhead of SGB relative to the standard
// Group-By on the same pipelines — GB2 vs SGB3/SGB4 (12a) and GB3 vs
// SGB5/SGB6 (12b) — across scale factors, ε=0.2, on-the-fly Index.
func Fig12(sc Scale) ([]*Report, error) {
	const eps = 0.2
	type pairSpec struct {
		title string
		gb    QuerySpec
		all   QuerySpec
		any   QuerySpec
	}
	pairs := []pairSpec{
		{"Figure 12a (GB2 vs SGB3/SGB4)", GB2(), SGB3(eps, core.JoinAny), SGB4(eps)},
		{"Figure 12b (GB3 vs SGB5/SGB6)", GB3(), SGB5(eps, core.JoinAny), SGB6(eps)},
	}
	var reports []*Report
	for _, p := range pairs {
		rep := &Report{
			Title:  p.title + " — SGB overhead vs standard Group-By",
			Header: []string{"SF", "Group-By", "SGB-All", "SGB-Any", "All overhead", "Any overhead"},
			Notes: []string{
				"expected shape: SGB runtimes track the standard Group-By closely (tens of percent, not multiples)",
			},
		}
		for _, sf := range sc.Fig10SFs {
			db, err := NewTPCHDB(sf, sc.CustomersPerSF, sc.Seed)
			if err != nil {
				return nil, err
			}
			dGB, err := bestOfQuery(db, core.IndexBounds, p.gb.SQL)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", p.gb.ID, err)
			}
			dAll, err := bestOfQuery(db, core.IndexBounds, p.all.SQL)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", p.all.ID, err)
			}
			dAny, err := bestOfQuery(db, core.IndexBounds, p.any.SQL)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", p.any.ID, err)
			}
			rep.AddRow(fmt.Sprintf("%g", sf), fmtDur(dGB), fmtDur(dAll), fmtDur(dAny),
				fmtOverhead(dGB, dAll), fmtOverhead(dGB, dAny))
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

func fmtOverhead(base, other time.Duration) string {
	if base <= 0 {
		return "-"
	}
	return fmt.Sprintf("%+.0f%%", 100*(float64(other)-float64(base))/float64(base))
}

// Table1 validates the complexity table empirically: for each SGB-All
// algorithm × ON-OVERLAP clause (and SGB-Any), runtimes are measured over a
// doubling sequence of input sizes and the average growth exponent
// log2(t(2n)/t(n)) is reported. Expected: ~2 for All-Pairs (quadratic),
// ~1 for the on-the-fly Index (near-linear), Bounds-Checking in between
// (O(n·|G|), data dependent).
func Table1(sc Scale) (*Report, error) {
	rep := &Report{
		Title:  "Table 1 — empirical growth exponents (eps=0.2, L2, uniform 2-D)",
		Header: []string{"operator", "algorithm", "clause", "t(n_max)", "growth exponent", "expected"},
		Notes: []string{
			"growth exponent = mean of log2(t(2n)/t(n)) over the size ladder; 1.0 = linear, 2.0 = quadratic",
			"paper's Table 1: All-Pairs O(n^2)/O(n^3), Bounds-Checking O(n|G|), Index O(n log |G|)",
		},
	}
	const eps = 0.2
	type variant struct {
		op       string
		alg      core.Algorithm
		ov       core.Overlap
		expected string
	}
	variants := []variant{
		{"SGB-All", core.AllPairs, core.JoinAny, "O(n^2)"},
		{"SGB-All", core.AllPairs, core.Eliminate, "O(n^2)"},
		{"SGB-All", core.AllPairs, core.FormNewGroup, "O(n^3) worst"},
		{"SGB-All", core.BoundsChecking, core.JoinAny, "O(n|G|)"},
		{"SGB-All", core.BoundsChecking, core.Eliminate, "O(n|G|)"},
		{"SGB-All", core.BoundsChecking, core.FormNewGroup, "O(mn|G|)"},
		{"SGB-All", core.IndexBounds, core.JoinAny, "O(n log|G|)"},
		{"SGB-All", core.IndexBounds, core.Eliminate, "O(n log|G|)"},
		{"SGB-All", core.IndexBounds, core.FormNewGroup, "O(mn log|G|)"},
	}
	for _, v := range variants {
		exps, tMax, err := growthExponents(sc.Table1Ns, sc.Seed, func(pts []geom.Point) error {
			_, err := core.SGBAll(pts, core.Options{Metric: geom.L2, Eps: eps, Overlap: v.ov, Algorithm: v.alg})
			return err
		})
		if err != nil {
			return nil, err
		}
		rep.AddRow(v.op, v.alg.String(), v.ov.String(), fmtDur(tMax),
			fmt.Sprintf("%.2f", exps), v.expected)
	}
	for _, alg := range []core.Algorithm{core.AllPairs, core.IndexBounds} {
		expected := "O(n^2)"
		if alg == core.IndexBounds {
			expected = "O(n log n)"
		}
		exps, tMax, err := growthExponents(sc.Table1Ns, sc.Seed, func(pts []geom.Point) error {
			_, err := core.SGBAny(pts, core.Options{Metric: geom.L2, Eps: eps, Algorithm: alg})
			return err
		})
		if err != nil {
			return nil, err
		}
		rep.AddRow("SGB-Any", alg.String(), "-", fmtDur(tMax),
			fmt.Sprintf("%.2f", exps), expected)
	}
	return rep, nil
}

// growthExponents measures run(pts) over the size ladder and returns the
// mean doubling exponent plus the largest-size runtime.
func growthExponents(ns []int, seed int64, run func([]geom.Point) error) (float64, time.Duration, error) {
	var prev time.Duration
	var sum float64
	var count int
	var last time.Duration
	for i, n := range ns {
		pts := SweepPoints(n, seed)
		// Take the best of two runs to damp scheduler noise.
		best := time.Duration(math.MaxInt64)
		for rep := 0; rep < 2; rep++ {
			d, err := timeIt(func() error { return run(pts) })
			if err != nil {
				return 0, 0, err
			}
			if d < best {
				best = d
			}
		}
		if i > 0 && prev > 0 {
			ratio := float64(best) / float64(prev)
			sum += math.Log2(ratio)
			count++
		}
		prev, last = best, best
	}
	if count == 0 {
		return 0, last, nil
	}
	return sum / float64(count), last, nil
}

// Table2 runs the full evaluation workload (GB1–GB3, SGB1–SGB6) once at the
// given scale and reports per-query rows and runtimes.
func Table2(sc Scale, sf, eps float64) (*Report, error) {
	db, err := NewTPCHDB(sf, sc.CustomersPerSF, sc.Seed)
	if err != nil {
		return nil, err
	}
	db.SetSGBAlgorithm(core.IndexBounds)
	rep := &Report{
		Title:  fmt.Sprintf("Table 2 — evaluation queries, SF=%g, eps=%g, on-the-fly Index", sf, eps),
		Header: []string{"query", "description", "rows", "time"},
		Notes: []string{
			"the SGB queries run as physical operators inside the same pipeline as the standard Group-By queries",
		},
	}
	for _, q := range AllQueries(eps, core.JoinAny) {
		var rows int
		d, err := timeIt(func() error {
			res, err := db.Query(q.SQL)
			if err != nil {
				return err
			}
			rows = len(res.Rows)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.ID, err)
		}
		rep.AddRow(q.ID, q.Description, fmt.Sprintf("%d", rows), fmtDur(d))
	}
	return rep, nil
}
