package sgb

// This file holds one testing.B benchmark per table/figure of the paper's
// evaluation section. Run them with:
//
//	go test -bench=. -benchmem
//
// The full parameter sweeps (all ε values, all scale factors) live in
// cmd/sgbbench; the benchmarks here pin each experiment's representative
// configuration so `go test -bench` regenerates one point of every curve
// with statistically stable timings.

import (
	"testing"

	"sgb/internal/bench"
	"sgb/internal/checkin"
	"sgb/internal/cluster"
	"sgb/internal/core"
	"sgb/internal/engine"
	"sgb/internal/geom"
)

const (
	benchEps    = 0.2
	benchSeed   = 1
	benchPoints = 5000 // per-iteration input size for operator benchmarks
)

var benchPts = bench.SweepPoints(benchPoints, benchSeed)

func benchSGBAll(b *testing.B, alg core.Algorithm, ov core.Overlap) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.SGBAll(benchPts, core.Options{
			Metric: geom.L2, Eps: benchEps, Overlap: ov, Algorithm: alg,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSGBAny(b *testing.B, alg core.Algorithm) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.SGBAny(benchPts, core.Options{
			Metric: geom.L2, Eps: benchEps, Algorithm: alg,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 1: complexity of the SGB-All variants ------------------------

func BenchmarkTable1_AllPairs_JoinAny(b *testing.B)   { benchSGBAll(b, core.AllPairs, core.JoinAny) }
func BenchmarkTable1_AllPairs_Eliminate(b *testing.B) { benchSGBAll(b, core.AllPairs, core.Eliminate) }
func BenchmarkTable1_AllPairs_FormNew(b *testing.B)   { benchSGBAll(b, core.AllPairs, core.FormNewGroup) }
func BenchmarkTable1_Bounds_JoinAny(b *testing.B)     { benchSGBAll(b, core.BoundsChecking, core.JoinAny) }
func BenchmarkTable1_Bounds_Eliminate(b *testing.B) {
	benchSGBAll(b, core.BoundsChecking, core.Eliminate)
}
func BenchmarkTable1_Bounds_FormNew(b *testing.B) {
	benchSGBAll(b, core.BoundsChecking, core.FormNewGroup)
}
func BenchmarkTable1_Index_JoinAny(b *testing.B)   { benchSGBAll(b, core.IndexBounds, core.JoinAny) }
func BenchmarkTable1_Index_Eliminate(b *testing.B) { benchSGBAll(b, core.IndexBounds, core.Eliminate) }
func BenchmarkTable1_Index_FormNew(b *testing.B)   { benchSGBAll(b, core.IndexBounds, core.FormNewGroup) }

// --- Table 2: the evaluation workload through the SQL engine ------------

func benchTable2Query(b *testing.B, spec bench.QuerySpec) {
	db, err := bench.NewTPCHDB(1, 300, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	db.SetSGBAlgorithm(core.IndexBounds)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(spec.SQL); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2_GB1(b *testing.B)  { benchTable2Query(b, bench.GB1()) }
func BenchmarkTable2_SGB1(b *testing.B) { benchTable2Query(b, bench.SGB1(benchEps, core.JoinAny)) }
func BenchmarkTable2_SGB2(b *testing.B) { benchTable2Query(b, bench.SGB2(benchEps)) }
func BenchmarkTable2_GB2(b *testing.B)  { benchTable2Query(b, bench.GB2()) }
func BenchmarkTable2_SGB3(b *testing.B) { benchTable2Query(b, bench.SGB3(benchEps, core.JoinAny)) }
func BenchmarkTable2_SGB4(b *testing.B) { benchTable2Query(b, bench.SGB4(benchEps)) }
func BenchmarkTable2_GB3(b *testing.B)  { benchTable2Query(b, bench.GB3()) }
func BenchmarkTable2_SGB5(b *testing.B) { benchTable2Query(b, bench.SGB5(benchEps, core.JoinAny)) }
func BenchmarkTable2_SGB6(b *testing.B) { benchTable2Query(b, bench.SGB6(benchEps)) }

// --- Figure 9: eps-sweep representatives (eps = 0.2 like Figure 10) -----

func BenchmarkFig9a_JoinAny_AllPairs(b *testing.B) { benchSGBAll(b, core.AllPairs, core.JoinAny) }
func BenchmarkFig9a_JoinAny_Bounds(b *testing.B)   { benchSGBAll(b, core.BoundsChecking, core.JoinAny) }
func BenchmarkFig9a_JoinAny_Index(b *testing.B)    { benchSGBAll(b, core.IndexBounds, core.JoinAny) }
func BenchmarkFig9b_Eliminate_AllPairs(b *testing.B) {
	benchSGBAll(b, core.AllPairs, core.Eliminate)
}
func BenchmarkFig9b_Eliminate_Bounds(b *testing.B) {
	benchSGBAll(b, core.BoundsChecking, core.Eliminate)
}
func BenchmarkFig9b_Eliminate_Index(b *testing.B) { benchSGBAll(b, core.IndexBounds, core.Eliminate) }
func BenchmarkFig9c_FormNew_AllPairs(b *testing.B) {
	benchSGBAll(b, core.AllPairs, core.FormNewGroup)
}
func BenchmarkFig9c_FormNew_Bounds(b *testing.B) {
	benchSGBAll(b, core.BoundsChecking, core.FormNewGroup)
}
func BenchmarkFig9c_FormNew_Index(b *testing.B) {
	benchSGBAll(b, core.IndexBounds, core.FormNewGroup)
}
func BenchmarkFig9d_Any_AllPairs(b *testing.B) { benchSGBAny(b, core.AllPairs) }
func BenchmarkFig9d_Any_Index(b *testing.B)    { benchSGBAny(b, core.IndexBounds) }

// --- Figure 10: data-size representative through the SQL pipeline -------

func benchFig10(b *testing.B, alg core.Algorithm, sql string) {
	db, err := bench.NewTPCHDB(2, 300, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	db.SetSGBAlgorithm(alg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(sql); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10_All_Bounds(b *testing.B) {
	benchFig10(b, core.BoundsChecking, bench.SGB1(benchEps, core.JoinAny).SQL)
}
func BenchmarkFig10_All_Index(b *testing.B) {
	benchFig10(b, core.IndexBounds, bench.SGB1(benchEps, core.JoinAny).SQL)
}
func BenchmarkFig10_Any_AllPairs(b *testing.B) {
	benchFig10(b, core.AllPairs, bench.SGB2(benchEps).SQL)
}
func BenchmarkFig10_Any_Index(b *testing.B) {
	benchFig10(b, core.IndexBounds, bench.SGB2(benchEps).SQL)
}

// --- Figure 11: SGB vs clustering on skewed check-in data ---------------

var fig11Pts = checkin.Points(checkin.Generate(checkin.Config{N: 5000, Seed: benchSeed}))

func BenchmarkFig11_DBSCAN(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.DBSCAN(fig11Pts, geom.L2, 0.005, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11_BIRCH(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.BIRCH(fig11Pts, 0.02, 8, 40, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11_KMeans20(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMeans(fig11Pts, 20, 100, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11_KMeans40(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMeans(fig11Pts, 40, 100, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11_SGBAll_Index(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.SGBAll(fig11Pts, core.Options{
			Metric: geom.L2, Eps: 0.005, Overlap: core.JoinAny, Algorithm: core.IndexBounds,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11_SGBAny_Index(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.SGBAny(fig11Pts, core.Options{
			Metric: geom.L2, Eps: 0.005, Algorithm: core.IndexBounds,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 12: SGB overhead vs standard Group-By -----------------------

var fig12DB = func() *engine.DB {
	db, err := bench.NewTPCHDB(2, 300, benchSeed)
	if err != nil {
		panic(err)
	}
	db.SetSGBAlgorithm(core.IndexBounds)
	return db
}()

func benchFig12(b *testing.B, sql string) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := fig12DB.Query(sql); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12a_GB2(b *testing.B)  { benchFig12(b, bench.GB2().SQL) }
func BenchmarkFig12a_SGB3(b *testing.B) { benchFig12(b, bench.SGB3(benchEps, core.JoinAny).SQL) }
func BenchmarkFig12a_SGB4(b *testing.B) { benchFig12(b, bench.SGB4(benchEps).SQL) }
func BenchmarkFig12b_GB3(b *testing.B)  { benchFig12(b, bench.GB3().SQL) }
func BenchmarkFig12b_SGB5(b *testing.B) { benchFig12(b, bench.SGB5(benchEps, core.JoinAny).SQL) }
func BenchmarkFig12b_SGB6(b *testing.B) { benchFig12(b, bench.SGB6(benchEps).SQL) }
