// Quickstart demonstrates both halves of the public API on the paper's own
// running examples: the operator API on the points of Figures 1 and 2, and
// the SQL API with the similarity-extended GROUP BY grammar.
package main

import (
	"fmt"
	"log"

	"sgb"
)

func main() {
	// --- Operator API --------------------------------------------------
	// The five points of the paper's Figure 2, arriving in order a1..a5.
	// a1,a2 form one clique, a3,a4 another; a5 is within ε=3 (L∞) of all
	// four, so it overlaps both groups.
	points := []sgb.Point{
		{1, 1},   // a1
		{2, 2},   // a2
		{6, 1},   // a3
		{7, 2},   // a4
		{4, 1.5}, // a5
	}

	for _, overlap := range []sgb.Overlap{sgb.JoinAny, sgb.Eliminate, sgb.FormNewGroup} {
		res, err := sgb.GroupAll(points, sgb.Options{
			Metric:    sgb.LInf,
			Eps:       3,
			Overlap:   overlap,
			Algorithm: sgb.IndexBounds,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("SGB-All ON-OVERLAP %-15v -> group sizes %v", overlap, res.Sizes())
		if len(res.Dropped) > 0 {
			fmt.Printf(", dropped %v", res.Dropped)
		}
		fmt.Println()
	}

	// DISTANCE-TO-ANY: a5 bridges the two cliques, so everything merges.
	res, err := sgb.GroupAny(points, sgb.Options{
		Metric: sgb.LInf, Eps: 3, Algorithm: sgb.IndexBounds,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SGB-Any                        -> group sizes %v\n", res.Sizes())
	fmt.Printf("operator cost: %d distance computations, %d window queries\n\n",
		res.Stats.DistanceComps, res.Stats.WindowQueries)

	// --- SQL API --------------------------------------------------------
	db := sgb.NewDB()
	mustExec(db, "CREATE TABLE gpspoints (id INT, lat FLOAT, lon FLOAT)")
	mustExec(db, `INSERT INTO gpspoints VALUES
		(1, 1.0, 1.0), (2, 2.0, 2.0), (3, 6.0, 1.0), (4, 7.0, 2.0), (5, 4.0, 1.5)`)

	// Example 1 from the paper: count per similarity group.
	q := `SELECT count(*) FROM gpspoints
	      GROUP BY lat, lon DISTANCE-TO-ALL LINF WITHIN 3
	      ON-OVERLAP FORM-NEW-GROUP`
	rows, err := db.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("SQL SGB-All FORM-NEW-GROUP counts:")
	for _, r := range rows.Rows {
		fmt.Printf("  count = %v\n", r[0])
	}

	// Example 2: SGB-Any merges everything into one group of 5.
	rows, err = db.Query(`SELECT count(*) FROM gpspoints
	                      GROUP BY lat, lon DISTANCE-TO-ANY L2 WITHIN 3`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("SQL SGB-Any counts:")
	for _, r := range rows.Rows {
		fmt.Printf("  count = %v\n", r[0])
	}
}

func mustExec(db *sgb.DB, sql string) {
	if _, err := db.Exec(sql); err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
}
