// Manet reproduces the paper's Example 3: analysing a Mobile Ad hoc Network
// (MANET) with similarity group-by queries.
//
// Query 1 uses DISTANCE-TO-ANY to find the geographic areas spanned by each
// connected network (devices chained by radio range), returning a bounding
// polygon per network. Query 2 uses DISTANCE-TO-ALL with ON-OVERLAP
// FORM-NEW-GROUP to find candidate gateway devices — the devices that bridge
// otherwise-separate device cliques.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sgb"
)

const signalRange = 2.0

func main() {
	db := sgb.NewDB()
	if _, err := db.Exec("CREATE TABLE mobiledevices (mdid INT, device_lat FLOAT, device_long FLOAT)"); err != nil {
		log.Fatal(err)
	}

	// Build three clusters of devices plus a bridge device connecting two
	// of them — the m1/m2 gateway situation from the paper's Figure 3.
	r := rand.New(rand.NewSource(7))
	id := 0
	add := func(lat, lon float64) {
		id++
		sql := fmt.Sprintf("INSERT INTO mobiledevices VALUES (%d, %g, %g)", id, lat, lon)
		if _, err := db.Exec(sql); err != nil {
			log.Fatal(err)
		}
	}
	clusterAt := func(lat, lon float64, n int) {
		for i := 0; i < n; i++ {
			add(lat+r.Float64()*1.2, lon+r.Float64()*1.2)
		}
	}
	clusterAt(0, 0, 6)   // campus A
	clusterAt(3.0, 0, 6) // campus B, ~3 units away: bridgeable
	clusterAt(20, 20, 5) // remote site, unreachable
	add(2.1, 0.6)        // the gateway candidate between A and B

	// Query 1: geographic areas that encompass each MANET.
	rows, err := db.Query(fmt.Sprintf(`
		SELECT count(*), st_polygon(device_lat, device_long)
		FROM mobiledevices
		GROUP BY device_lat, device_long
		DISTANCE-TO-ANY L2 WITHIN %g`, signalRange))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Query 1 — connected MANETs and their coverage polygons:")
	for _, row := range rows.Rows {
		fmt.Printf("  %2v devices  %v\n", row[0], row[1])
	}

	// Query 2: candidate gateways. Devices that qualify for more than one
	// clique are diverted into new groups by FORM-NEW-GROUP; comparing
	// group inventories against ELIMINATE (which drops them) isolates the
	// overlapping devices.
	gateways, err := db.Query(fmt.Sprintf(`
		SELECT count(*), list_id(mdid)
		FROM mobiledevices
		GROUP BY device_lat, device_long
		DISTANCE-TO-ALL L2 WITHIN %g
		ON-OVERLAP FORM-NEW-GROUP`, signalRange))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nQuery 2 — cliques after FORM-NEW-GROUP (singleton groups that vanish")
	fmt.Println("under ELIMINATE are the gateway candidates):")
	for _, row := range gateways.Rows {
		fmt.Printf("  size %2v  members %v\n", row[0], row[1])
	}

	eliminated, err := db.Query(fmt.Sprintf(`
		SELECT count(*), list_id(mdid)
		FROM mobiledevices
		GROUP BY device_lat, device_long
		DISTANCE-TO-ALL L2 WITHIN %g
		ON-OVERLAP ELIMINATE`, signalRange))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSame query under ELIMINATE (overlapping devices dropped):")
	for _, row := range eliminated.Rows {
		fmt.Printf("  size %2v  members %v\n", row[0], row[1])
	}
}
