// Geosocial reproduces the paper's Example 4 / Query 3: forming private
// location-based groups from users' frequent locations.
//
// Users within a distance threshold of each other are recommended a shared
// group. A user whose location qualifies for several groups is a privacy
// risk (information can leak across groups), so the three ON-OVERLAP
// semantics are compared: JOIN-ANY assigns such users to one group,
// ELIMINATE excludes them from recommendations, and FORM-NEW-GROUP gives
// them dedicated groups.
package main

import (
	"fmt"
	"log"

	"sgb"
	"sgb/internal/checkin"
)

func main() {
	db := sgb.NewDB()

	// Synthetic "frequent location" table: one hotspot-skewed point per
	// user, standing in for the Users-Frequent-Location table.
	cs := checkin.Generate(checkin.Config{N: 400, Hotspots: 6, Spread: 0.3, Seed: 11})
	if err := checkin.Load(db, "users_frequent_location", cs); err != nil {
		log.Fatal(err)
	}

	const threshold = 0.8 // degrees; neighbourhood-sized

	for _, clause := range []string{"JOIN-ANY", "ELIMINATE", "FORM-NEW-GROUP"} {
		q := fmt.Sprintf(`
			SELECT count(*), st_polygon(lat, lon)
			FROM users_frequent_location
			GROUP BY lat, lon
			DISTANCE-TO-ALL L2 WITHIN %g
			ON-OVERLAP %s`, threshold, clause)
		res, err := db.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		var members int64
		large := 0
		for _, row := range res.Rows {
			members += row[0].I
			if row[0].I >= 10 {
				large++
			}
		}
		fmt.Printf("ON-OVERLAP %-15s -> %3d groups, %3d users recommended (%d dropped), %d groups with >= 10 members\n",
			clause, len(res.Rows), members, int64(len(cs))-members, large)
	}

	// Show a few of the recommended groups with their member lists and
	// coverage polygons under the privacy-preserving ELIMINATE semantics.
	res, err := db.Query(fmt.Sprintf(`
		SELECT count(*), list_id(user_id), st_polygon(lat, lon)
		FROM users_frequent_location
		GROUP BY lat, lon
		DISTANCE-TO-ALL L2 WITHIN %g
		ON-OVERLAP ELIMINATE
		ORDER BY count(*) DESC
		LIMIT 3`, threshold))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlargest private groups (ELIMINATE):")
	for _, row := range res.Rows {
		ids := row[1].String()
		if len(ids) > 70 {
			ids = ids[:67] + "..."
		}
		fmt.Printf("  %3v members  %s\n  area %v\n", row[0], ids, row[2])
	}
}
