// Tpch_analytics runs the paper's Table 2 evaluation workload end-to-end:
// the standard Group-By business questions (GB1–GB3, shaped after TPC-H
// Q18/Q9/Q15) and their similarity-grouping counterparts (SGB1–SGB6) over
// generated TPC-H-style data, comparing answer shapes and runtimes.
package main

import (
	"fmt"
	"log"
	"time"

	"sgb/internal/bench"
	"sgb/internal/core"
)

func main() {
	const (
		sf  = 1.0
		eps = 0.2
	)
	db, err := bench.NewTPCHDB(sf, 300, 1)
	if err != nil {
		log.Fatal(err)
	}
	db.SetSGBAlgorithm(core.IndexBounds)

	fmt.Printf("TPC-H-style workload, SF=%g, eps=%g\n\n", sf, eps)
	for _, q := range bench.AllQueries(eps, core.JoinAny) {
		start := time.Now()
		res, err := db.Query(q.SQL)
		if err != nil {
			log.Fatalf("%s: %v", q.ID, err)
		}
		elapsed := time.Since(start)
		fmt.Printf("%-5s %-62s %5d rows  %8v\n", q.ID, q.Description, len(res.Rows), elapsed.Round(time.Microsecond))
		if st := db.LastSGBStats(); st != nil {
			fmt.Printf("      SGB operator: %d tuples grouped, %d distance computations, %d window queries\n",
				st.Points, st.DistanceComps, st.WindowQueries)
		}
	}

	// The business answer of SGB1: how do similarity groups summarize
	// customer buying power? Show the three overlap semantics side by side.
	fmt.Println("\nSGB1 group counts under the three ON-OVERLAP semantics:")
	for _, ov := range []core.Overlap{core.JoinAny, core.Eliminate, core.FormNewGroup} {
		res, err := db.Query(bench.SGB1(eps, ov).SQL)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-15v -> %d groups\n", ov, len(res.Rows))
	}
}
