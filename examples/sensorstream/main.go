// Sensorstream demonstrates the streaming operator API: readings arrive one
// at a time from a simulated sensor field and are grouped incrementally —
// the way the paper's executor consumes tuples — without materializing the
// input first. After the stream ends, the groups are summarized
// geometrically (size, centroid, coverage, diameter).
//
// The scenario: temperature sensors drift around three geographic sites;
// DISTANCE-TO-ANY recovers the sites from raw positions, and a second pass
// with DISTANCE-TO-ALL + ELIMINATE finds tight sensor cliques whose members
// all agree within a small reading threshold, dropping the ambiguous ones.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sgb"
)

func main() {
	r := rand.New(rand.NewSource(42))

	// Simulated stream: (x, y) positions around three sites.
	sites := []sgb.Point{{0, 0}, {40, 5}, {20, 30}}
	stream := func(emit func(sgb.Point)) {
		for i := 0; i < 600; i++ {
			s := sites[r.Intn(len(sites))]
			emit(sgb.Point{
				s[0] + r.NormFloat64()*1.5,
				s[1] + r.NormFloat64()*1.5,
			})
		}
	}

	// Pass 1: connectivity grouping while the stream flows.
	anyG, err := sgb.NewAnyGrouper(sgb.Options{
		Metric: sgb.L2, Eps: 4, Algorithm: sgb.IndexBounds,
	})
	if err != nil {
		log.Fatal(err)
	}
	var points []sgb.Point
	stream(func(p sgb.Point) {
		points = append(points, p)
		if _, err := anyG.Add(p); err != nil {
			log.Fatal(err)
		}
	})
	res, err := anyG.Finish()
	if err != nil {
		log.Fatal(err)
	}
	sums, err := sgb.Summarize(points, res, sgb.L2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DISTANCE-TO-ANY recovered %d sensor sites from %d readings:\n", len(res.Groups), len(points))
	for i, s := range sums {
		fmt.Printf("  site %d: %3d sensors, centroid (%.1f, %.1f), spread %.1f\n",
			i+1, s.Size, s.Centroid[0], s.Centroid[1], s.Diameter)
	}

	// Pass 2: tight cliques with ELIMINATE — sensors whose positions all
	// pairwise agree within 2 units; sensors straddling cliques are dropped.
	allG, err := sgb.NewAllGrouper(sgb.Options{
		Metric: sgb.L2, Eps: 2, Overlap: sgb.Eliminate, Algorithm: sgb.IndexBounds,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range points {
		if _, err := allG.Add(p); err != nil {
			log.Fatal(err)
		}
	}
	tight, err := allG.Finish()
	if err != nil {
		log.Fatal(err)
	}
	large := 0
	for _, g := range tight.Groups {
		if g.Len() >= 5 {
			large++
		}
	}
	fmt.Printf("\nDISTANCE-TO-ALL ELIMINATE: %d cliques (%d with >= 5 sensors), %d ambiguous sensors dropped\n",
		len(tight.Groups), large, len(tight.Dropped))
	fmt.Printf("operator counters: %d distance computations, %d window queries, %d index updates\n",
		tight.Stats.DistanceComps, tight.Stats.WindowQueries, tight.Stats.IndexUpdates)
}
