// Command sgbcli is an interactive SQL shell for the similarity group-by
// engine. By default it runs against an embedded in-process database; with
// -connect host:port it speaks the wire protocol to a running sgbd instead,
// and the settings meta commands (\alg, \parallel, \batch, \limits) map onto
// session-scoped settings of that connection.
//
// Statements end with ';'. Meta commands:
//
//	\tables              list tables
//	\load tpch <SF>      generate and load TPC-H-style data
//	\load checkin <N>    generate and load a check-in table ("checkins")
//	\alg <name>          pick the SGB algorithm: auto (cost-based, the
//	                     default) | allpairs | bounds | index
//	\parallel [<n>]      set the morsel worker count (0 = auto/GOMAXPROCS,
//	                     1 = serial; no args: show the resolved count)
//	\batch [<n>]         set the batch/morsel row count (0 = engine default;
//	                     no args: show)
//	\save <file>         snapshot the database to a file
//	\open <file>         replace the session database with a snapshot
//	\timing              toggle query timing (with parse/plan/execute spans;
//	                     remote: also prints the query's trace ID)
//	\stats               dump the engine metrics registry (Prometheus text)
//	\slowlog <ms>        log queries slower than <ms> to stderr (0 disables)
//	\slowlog             remote only: fetch the server's slow-query log,
//	                     newest first, with each query's trace spans
//	\processlist         remote only: show the server's in-flight queries
//	                     (trace ID, client, state, elapsed)
//	\subscribe <view> [<token>]
//	                     remote only: stream a materialized view's deltas
//	                     until Ctrl-C; with a token, resume after that seq
//	\limits rows <n> | time <dur> | off
//	                     set per-query resource limits (no args: show)
//	\q                   quit
//
// In remote mode \tables, \load, \save, and \open are unavailable (they need
// the embedded database); everything else works, with \stats fetching the
// server's metrics registry over the wire.
//
// Ctrl-C while a statement is executing cancels that statement (embedded:
// context cancellation; remote: a wire Cancel frame — the server aborts the
// query and the connection stays usable); Ctrl-C at the prompt exits the
// shell.
//
// Example session:
//
//	sgb> \load checkin 10000
//	sgb> SELECT count(*) FROM checkins
//	     GROUP BY lat, lon DISTANCE-TO-ANY L2 WITHIN 0.5;
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"sgb/internal/checkin"
	"sgb/internal/client"
	"sgb/internal/core"
	"sgb/internal/engine"
	"sgb/internal/stream"
	"sgb/internal/tpch"
	"sgb/internal/wire"
)

// session bundles the shell's state: the embedded database handle or the
// remote connection, plus the observability toggles.
type session struct {
	db      *engine.DB   // embedded mode (nil when remote)
	conn    *client.Conn // remote mode (nil when embedded)
	timing  bool
	slowLog time.Duration // 0 = disabled
}

// exec runs one statement with SIGINT wired to query cancellation: Ctrl-C
// mid-query aborts the statement instead of the shell. In remote mode the
// context cancellation sends a wire Cancel frame to the server. The signal
// registration is scoped to the statement, so Ctrl-C at the idle prompt keeps
// its default exit behaviour.
func (s *session) exec(sql string) (*engine.Result, error) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if s.conn != nil {
		return s.conn.Query(ctx, sql)
	}
	return s.db.ExecContext(ctx, sql)
}

func main() {
	connect := flag.String("connect", "", "connect to a remote sgbd at host:port instead of running embedded")
	flag.Parse()

	s := &session{}
	if *connect != "" {
		conn, err := client.Connect(*connect)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sgbcli: connect:", err)
			os.Exit(1)
		}
		defer conn.Close()
		s.conn = conn
		fmt.Printf("connected to %s (%s) — \\q to quit\n", *connect, conn.Server())
	} else {
		s.db = engine.NewDB()
		fmt.Println("similarity group-by shell — \\q to quit, \\load tpch 1 to get data")
	}
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder

	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("sgb> ")
		} else {
			fmt.Print("...> ")
		}
	}
	prompt()
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if !meta(s, trimmed) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			prompt()
			continue
		}
		sql := strings.TrimSpace(buf.String())
		buf.Reset()
		start := time.Now()
		res, err := s.exec(sql)
		elapsed := time.Since(start)
		if err != nil {
			if client.IsCanceled(err) {
				fmt.Printf("canceled after %v\n", elapsed.Round(time.Millisecond))
			} else {
				fmt.Println("error:", err)
				printErrHint(err)
			}
		} else {
			printResult(res)
			if s.timing {
				switch {
				case s.db != nil && s.db.LastTrace() != nil:
					fmt.Printf("(%v — %s)\n", elapsed, s.db.LastTrace())
				case s.conn != nil && s.conn.LastTraceID() != "":
					// The trace ID keys the server-side trace: feed it to
					// \slowlog or /debug/slowlog for the span breakdown.
					fmt.Printf("(%v — trace=%s)\n", elapsed, s.conn.LastTraceID())
				default:
					fmt.Printf("(%v)\n", elapsed)
				}
			}
		}
		if s.slowLog > 0 && elapsed >= s.slowLog {
			fmt.Fprintf(os.Stderr, "slow query (%v): %s\n", elapsed, firstLine(sql))
		}
		prompt()
	}
}

// printErrHint translates the server's typed degradation errors into a
// human next step, including the server's retry-after hint when present.
func printErrHint(err error) {
	var se *client.ServerError
	if !errors.As(err, &se) {
		return
	}
	retry := ""
	if d := se.RetryAfter(); d > 0 {
		retry = fmt.Sprintf(" (server suggests retrying in %v)", d)
	}
	switch se.Code {
	case wire.CodeReadOnly:
		fmt.Printf("hint: server is read-only: disk full or write fault; reads keep working and writes resume automatically once the disk recovers%s\n", retry)
	case wire.CodeOverloaded:
		fmt.Printf("hint: server is shedding load (admission queue or memory budget full); retry the statement%s\n", retry)
	}
}

// firstLine compresses a statement to one log-friendly line.
func firstLine(sql string) string {
	sql = strings.Join(strings.Fields(sql), " ")
	if len(sql) > 120 {
		sql = sql[:117] + "..."
	}
	return sql
}

// meta handles a backslash command; it returns false on \q.
func meta(s *session, cmd string) bool {
	if s.conn != nil {
		return metaRemote(s, cmd)
	}
	db := s.db
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\q", "\\quit":
		return false
	case "\\timing":
		s.timing = !s.timing
		fmt.Println("timing:", s.timing)
	case "\\stats":
		if err := db.Metrics().WritePrometheus(os.Stdout); err != nil {
			fmt.Println("stats failed:", err)
		}
	case "\\limits":
		lim := db.Limits()
		switch {
		case len(fields) == 1:
		case len(fields) == 2 && fields[1] == "off":
			lim = engine.Limits{}
		case len(fields) == 3 && fields[1] == "rows":
			n, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil || n < 0 {
				fmt.Println("bad row limit:", fields[2])
				return true
			}
			lim.MaxRowsMaterialized = n
		case len(fields) == 3 && fields[1] == "time":
			d, err := time.ParseDuration(fields[2])
			if err != nil || d < 0 {
				fmt.Println("bad time limit:", fields[2])
				return true
			}
			lim.MaxExecutionTime = d
		default:
			fmt.Println("usage: \\limits [rows <n> | time <duration> | off]")
			return true
		}
		db.SetLimits(lim)
		rows, dur := "unlimited", "unlimited"
		if lim.MaxRowsMaterialized > 0 {
			rows = strconv.FormatInt(lim.MaxRowsMaterialized, 10)
		}
		if lim.MaxExecutionTime > 0 {
			dur = lim.MaxExecutionTime.String()
		}
		fmt.Printf("limits: rows=%s time=%s\n", rows, dur)
	case "\\slowlog":
		if len(fields) != 2 {
			fmt.Println("usage: \\slowlog <milliseconds>  (0 disables)")
			break
		}
		ms, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || ms < 0 {
			fmt.Println("bad threshold:", fields[1])
			break
		}
		s.slowLog = time.Duration(ms * float64(time.Millisecond))
		if s.slowLog == 0 {
			fmt.Println("slow-query log disabled")
		} else {
			fmt.Printf("logging queries slower than %v to stderr\n", s.slowLog)
		}
	case "\\tables":
		for _, n := range db.Catalog().Names() {
			t, _ := db.Catalog().Get(n)
			fmt.Printf("%s (%d rows)\n", n, len(t.Rows))
		}
	case "\\alg":
		if len(fields) != 2 {
			fmt.Println("usage: \\alg auto|allpairs|bounds|index")
			break
		}
		switch fields[1] {
		case "auto":
			db.SetSGBAlgorithmAuto()
		case "allpairs":
			db.SetSGBAlgorithm(core.AllPairs)
		case "bounds":
			db.SetSGBAlgorithm(core.BoundsChecking)
		case "index":
			db.SetSGBAlgorithm(core.IndexBounds)
		default:
			fmt.Println("unknown algorithm:", fields[1])
		}
		if db.SGBAlgorithmIsAuto() {
			fmt.Println("SGB algorithm: auto (cost-based per query)")
		} else {
			fmt.Println("SGB algorithm:", db.SGBAlgorithm())
		}
	case "\\parallel":
		if len(fields) == 2 {
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				fmt.Println("bad worker count:", fields[1])
				break
			}
			db.SetParallelism(n)
		} else if len(fields) != 1 {
			fmt.Println("usage: \\parallel [<n>]  (0 = auto, 1 = serial)")
			break
		}
		fmt.Println("parallel workers:", db.Parallelism())
	case "\\batch":
		if len(fields) == 2 {
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				fmt.Println("bad batch size:", fields[1])
				break
			}
			db.SetBatchSize(n)
		} else if len(fields) != 1 {
			fmt.Println("usage: \\batch [<n>]  (0 = engine default)")
			break
		}
		fmt.Println("batch size:", db.BatchSize())
	case "\\save":
		if len(fields) != 2 {
			fmt.Println("usage: \\save <file>")
			break
		}
		f, err := os.Create(fields[1])
		if err != nil {
			fmt.Println("save failed:", err)
			break
		}
		err = db.Save(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Println("save failed:", err)
		} else {
			fmt.Println("saved to", fields[1])
		}
	case "\\open":
		if len(fields) != 2 {
			fmt.Println("usage: \\open <file>")
			break
		}
		f, err := os.Open(fields[1])
		if err != nil {
			fmt.Println("open failed:", err)
			break
		}
		loaded, err := engine.Load(f)
		f.Close()
		if err != nil {
			fmt.Println("open failed:", err)
			break
		}
		s.db = loaded
		fmt.Println("opened", fields[1])
	case "\\load":
		if len(fields) != 3 {
			fmt.Println("usage: \\load tpch <SF> | \\load checkin <N>")
			break
		}
		switch fields[1] {
		case "tpch":
			sf, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				fmt.Println("bad scale factor:", fields[2])
				break
			}
			d := tpch.Generate(tpch.Config{SF: sf, Seed: 1})
			if err := d.Load(db); err != nil {
				fmt.Println("load failed:", err)
				break
			}
			fmt.Printf("loaded: %v\n", d.Counts())
		case "checkin":
			n, err := strconv.Atoi(fields[2])
			if err != nil {
				fmt.Println("bad count:", fields[2])
				break
			}
			cs := checkin.Generate(checkin.Config{N: n, Seed: 1})
			if err := checkin.Load(db, "checkins", cs); err != nil {
				fmt.Println("load failed:", err)
				break
			}
			fmt.Printf("loaded %d check-ins into table checkins\n", n)
		default:
			fmt.Println("unknown dataset:", fields[1])
		}
	case "\\processlist":
		fmt.Println("\\processlist needs a server; use -connect")
	case "\\subscribe":
		fmt.Println("\\subscribe needs a server; use -connect")
	default:
		fmt.Println("unknown command:", fields[0])
	}
	return true
}

// metaRemote handles a backslash command against a remote sgbd: the settings
// commands become wire Set messages scoped to this connection's session, and
// \stats fetches the server's metrics registry. Commands that need the
// embedded database (\tables, \load, \save, \open) are unavailable.
func metaRemote(s *session, cmd string) bool {
	c := s.conn
	fields := strings.Fields(cmd)
	// set sends one session-setting change and reports the outcome.
	set := func(name, value string) {
		if err := c.Set(name, value); err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Printf("%s = %s\n", name, value)
		}
	}
	switch fields[0] {
	case "\\q", "\\quit":
		return false
	case "\\timing":
		s.timing = !s.timing
		fmt.Println("timing:", s.timing)
	case "\\slowlog":
		// With no argument, fetch the server's slow-query log; with a
		// threshold, keep the local client-side logging from embedded mode.
		if len(fields) == 1 {
			entries, err := c.SlowLog(context.Background())
			if err != nil {
				fmt.Println("slowlog failed:", err)
				break
			}
			if len(entries) == 0 {
				fmt.Println("server slowlog is empty")
				break
			}
			for _, e := range entries {
				fmt.Printf("%s  %8.3fms  trace=%s  client=%s\n", e.FinishedAt, e.ElapsedMS, e.TraceID, e.Client)
				fmt.Printf("  %s\n", firstLine(e.SQL))
				if e.Err != "" {
					fmt.Printf("  error: %s\n", e.Err)
				}
				for _, sp := range e.Trace.Spans {
					fmt.Printf("  %-12s %8.3fms\n", sp.Name, sp.DurMS)
				}
			}
			break
		}
		if len(fields) != 2 {
			fmt.Println("usage: \\slowlog [<milliseconds>]  (no args: fetch server slowlog; 0 disables local logging)")
			break
		}
		ms, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || ms < 0 {
			fmt.Println("bad threshold:", fields[1])
			break
		}
		s.slowLog = time.Duration(ms * float64(time.Millisecond))
		if s.slowLog == 0 {
			fmt.Println("slow-query log disabled")
		} else {
			fmt.Printf("logging queries slower than %v to stderr\n", s.slowLog)
		}
	case "\\processlist":
		procs, err := c.ProcessList(context.Background())
		if err != nil {
			fmt.Println("processlist failed:", err)
			break
		}
		if len(procs) == 0 {
			fmt.Println("no queries in flight")
			break
		}
		for _, q := range procs {
			fmt.Printf("trace=%s  client=%s  state=%-10s  %8.3fms  %s\n",
				q.TraceID, q.Client, q.State, q.ElapsedMS, firstLine(q.SQL))
		}
	case "\\stats":
		text, err := c.Stats()
		if err != nil {
			fmt.Println("stats failed:", err)
			break
		}
		printStatsHeadline(text)
		fmt.Print(text)
	case "\\alg":
		if len(fields) != 2 {
			fmt.Println("usage: \\alg auto|allpairs|bounds|index")
			break
		}
		set("sgb_algorithm", fields[1])
	case "\\parallel":
		if len(fields) != 2 {
			fmt.Println("usage: \\parallel <n>  (0 = auto, 1 = serial)")
			break
		}
		set("parallelism", fields[1])
	case "\\batch":
		if len(fields) != 2 {
			fmt.Println("usage: \\batch <n>  (0 = engine default)")
			break
		}
		set("batch_size", fields[1])
	case "\\limits":
		switch {
		case len(fields) == 2 && fields[1] == "off":
			set("max_rows", "0")
			set("max_time", "0")
		case len(fields) == 3 && fields[1] == "rows":
			set("max_rows", fields[2])
		case len(fields) == 3 && fields[1] == "time":
			set("max_time", fields[2])
		default:
			fmt.Println("usage: \\limits rows <n> | time <duration> | off")
		}
	case "\\subscribe":
		if len(fields) < 2 || len(fields) > 3 {
			fmt.Println("usage: \\subscribe <view> [<resume-token>]")
			break
		}
		var token uint64
		if len(fields) == 3 {
			t, err := strconv.ParseUint(fields[2], 10, 64)
			if err != nil {
				fmt.Println("bad resume token:", fields[2])
				break
			}
			token = t
		}
		s.subscribe(fields[1], token)
	case "\\tables", "\\load", "\\save", "\\open":
		fmt.Printf("%s needs the embedded database; not available with -connect\n", fields[0])
	default:
		fmt.Println("unknown command:", fields[0])
	}
	return true
}

// printStatsHeadline surfaces the server's degradation state above the raw
// Prometheus dump: read-only mode, queued admissions, and memory pressure
// are the first things an operator checks when queries misbehave.
func printStatsHeadline(text string) {
	get := func(name string) (float64, bool) {
		for _, line := range strings.Split(text, "\n") {
			if rest, ok := strings.CutPrefix(line, name+" "); ok {
				v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
				return v, err == nil
			}
		}
		return 0, false
	}
	if v, ok := get("server_degraded"); ok && v != 0 {
		fmt.Println("!! server is DEGRADED (read-only): writes are rejected until the disk probe recovers")
	}
	if v, ok := get("server_admission_queued"); ok && v > 0 {
		fmt.Printf("!! %d statement(s) queued for admission (server at max-active-queries)\n", int64(v))
	}
	used, okUsed := get("engine_mem_used_bytes")
	budget, okBudget := get("engine_mem_budget_bytes")
	if okUsed && okBudget && budget > 0 {
		fmt.Printf("memory: %.0f of %.0f budget bytes in use (%.0f%%)\n", used, budget, 100*used/budget)
	}
}

// subscribe streams a materialized view's deltas to stdout until Ctrl-C,
// then detaches cleanly and returns the connection to the idle prompt. Each
// line carries the delta's resume token (seq), so a later
// \subscribe <view> <seq> resumes after the last delta seen.
func (s *session) subscribe(view string, token uint64) {
	ss, err := s.conn.SubscribeOnce(view, token)
	if err != nil {
		fmt.Println("subscribe failed:", err)
		return
	}
	if ss.Snapshot {
		fmt.Printf("-- snapshot at seq %d (token predates retention; full state image follows); Ctrl-C to stop\n", ss.Seq)
	} else {
		fmt.Printf("-- live after seq %d; Ctrl-C to stop\n", ss.Seq)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			// The server answers Cancel with Done, unblocking Next below.
			s.conn.Cancel()
		case <-done:
		}
	}()
	n := 0
	for {
		d, err := ss.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				fmt.Printf("-- subscription closed (%d deltas)\n", n)
			} else {
				fmt.Println("stream error:", err)
			}
			return
		}
		n++
		switch d.Kind {
		case stream.GroupsMerged:
			fmt.Printf("seq=%d  %-14s group=%d absorbed=%v\n", d.Seq, d.Kind, d.Group, d.Merged)
		case stream.GroupDissolved:
			fmt.Printf("seq=%d  %-14s group=%d\n", d.Seq, d.Kind, d.Group)
		default:
			fmt.Printf("seq=%d  %-14s group=%d members=%v\n", d.Seq, d.Kind, d.Group, d.Members)
		}
	}
}

func printResult(res *engine.Result) {
	if len(res.Columns) == 0 {
		if res.RowsAffected > 0 {
			fmt.Printf("ok (%d rows)\n", res.RowsAffected)
		} else {
			fmt.Println("ok")
		}
		return
	}
	widths := make([]int, len(res.Columns))
	for i, c := range res.Columns {
		widths[i] = len(c)
	}
	// EXPLAIN plans are one wide column; clipping them at 60 chars would
	// cut off the actuals annotations.
	isPlan := len(res.Columns) == 1 && res.Columns[0] == "plan"
	const maxRows = 50
	shown := res.Rows
	if len(shown) > maxRows {
		shown = shown[:maxRows]
	}
	cells := make([][]string, len(shown))
	for i, r := range shown {
		cells[i] = make([]string, len(r))
		for j, v := range r {
			s := v.String()
			if len(s) > 60 && !isPlan {
				s = s[:57] + "..."
			}
			cells[i][j] = s
			if j < len(widths) && len(s) > widths[j] {
				widths[j] = len(s)
			}
		}
	}
	row := func(vals []string) {
		for i, v := range vals {
			if i > 0 {
				fmt.Print(" | ")
			}
			fmt.Print(v, strings.Repeat(" ", widths[i]-len(v)))
		}
		fmt.Println()
	}
	row(res.Columns)
	total := 0
	for _, w := range widths {
		total += w + 3
	}
	fmt.Println(strings.Repeat("-", total))
	for _, r := range cells {
		row(r)
	}
	if len(res.Rows) > maxRows {
		fmt.Printf("... (%d rows total)\n", len(res.Rows))
	} else {
		fmt.Printf("(%d rows)\n", len(res.Rows))
	}
}
