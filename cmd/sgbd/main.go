// Command sgbd is the similarity group-by database server: it serves a
// shared engine.DB over the internal/wire TCP protocol and exports
// Prometheus metrics plus health probes over HTTP.
//
//	sgbd -addr 127.0.0.1:7433 -metrics-addr 127.0.0.1:9433 \
//	     -data-dir /var/lib/sgbd -fsync always -checkpoint-interval 1m \
//	     -max-conns 100 -idle-timeout 5m
//
// Flags:
//
//	-addr            TCP listen address for the wire protocol
//	-metrics-addr    HTTP listen address for /metrics, /healthz, /readyz ("" disables)
//	-data-dir DIR    durable mode: write-ahead log + checkpoints in DIR;
//	                 recovery replays the log tail at boot
//	-fsync POLICY    WAL fsync policy: always | interval | never
//	-fsync-interval D  flush period when -fsync interval
//	-checkpoint-interval D  background snapshot+log-trim period (0 disables)
//	-snapshot FILE   legacy non-durable mode: load FILE at boot when it
//	                 exists; save back on graceful shutdown only
//	-max-conns N     reject connections beyond N concurrently open (0 = off)
//	-idle-timeout D  close connections idle between statements for D (0 = off)
//	-parallel N      default session worker count (0 = auto/GOMAXPROCS)
//	-batch N         default session batch/morsel row count (0 = engine default)
//	-max-rows N      default per-query row-materialization limit (0 = off)
//	-max-time D      default per-query execution time limit (0 = off)
//	-alg NAME        default SGB algorithm: auto (cost-based) | allpairs |
//	                 bounds | index
//	-drain-timeout D grace period for in-flight statements on shutdown
//	-slow-query D    slowlog threshold: statements at least this slow are
//	                 kept with their full trace (0 keeps all, -1 disables)
//	-slowlog-size N  slow-query ring buffer capacity
//	-trace-sample N  collect per-operator EXPLAIN ANALYZE actuals on every
//	                 Nth statement (1 = every statement, 0 = never)
//	-auto-analyze    re-ANALYZE tables in the background when a write pushes
//	                 their statistics past the staleness threshold (default on)
//	-mem-budget N    process-wide query memory budget (suffix K/M/G; 0 = off).
//	                 Queries are admitted against it and shed with a typed
//	                 retryable error under sustained pressure
//	-max-active-queries N  cap statements executing concurrently (0 = off);
//	                 excess statements queue, then shed with CodeOverloaded
//	-admission-queue N  bound on statements waiting for an execution slot
//	-probe-interval D  how often a degraded (read-only after disk fault) store
//	                 re-probes the disk and tries to promote back to writable
//	-version         print version and build info, then exit
//
// The metrics listener also serves the observability surface: /debug/queries
// (live process list), /debug/slowlog (recent slow queries with their
// traces), /debug/views (materialized view state, delta rates, staleness,
// subscriber counts), and the standard /debug/pprof/ profiles.
//
// Materialized views (CREATE MATERIALIZED VIEW ... GROUP BY ... WITHIN eps)
// are maintained incrementally from the commit path in every boot mode and
// served to SUBSCRIBE clients as typed delta streams with WAL-anchored
// resume tokens; see internal/stream.
//
// With -data-dir, every committed DML/DDL statement is appended to the WAL
// before it is acknowledged on the wire (under -fsync always, a kill -9 or
// power loss after the acknowledgement loses nothing), and boot recovers by
// loading the latest checkpoint then replaying the log tail. The HTTP
// /readyz endpoint answers 503 until that recovery completes and 503 again
// while draining; /healthz answers 200 whenever the process is up.
//
// Per-connection sessions inherit the flag defaults and may override them
// with wire Set messages (sgbcli -connect maps \parallel, \batch, \limits,
// \alg onto those). SIGINT/SIGTERM drain gracefully: the listener closes,
// in-flight statements get -drain-timeout to finish, then a final checkpoint
// (or the legacy snapshot) is saved.
//
// sgbd prints "listening on <addr>" and "metrics on http://<addr>/metrics"
// to stdout once ready, so scripts using ":0" ports can scrape the actual
// addresses.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"syscall"
	"time"

	"sgb/internal/core"
	"sgb/internal/engine"
	"sgb/internal/obs"
	"sgb/internal/server"
	"sgb/internal/stream"
	"sgb/internal/wal"
)

// buildVersion identifies this sgbd build in -version output and the
// sgbd_build_info metric. Overridable at link time:
//
//	go build -ldflags "-X main.buildVersion=v1.2.3" ./cmd/sgbd
var buildVersion = "0.6.0-dev"

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7433", "wire protocol listen address")
		metricsAddr  = flag.String("metrics-addr", "127.0.0.1:9433", "HTTP /metrics,/healthz,/readyz listen address (empty disables)")
		dataDir      = flag.String("data-dir", "", "durable data directory (WAL + checkpoints); empty = not durable")
		fsyncPolicy  = flag.String("fsync", "always", "WAL fsync policy: always|interval|never")
		fsyncEvery   = flag.Duration("fsync-interval", 100*time.Millisecond, "flush period with -fsync interval")
		ckptEvery    = flag.Duration("checkpoint-interval", time.Minute, "background checkpoint period (0 disables)")
		snapshot     = flag.String("snapshot", "", "legacy snapshot file: loaded at boot if present, saved on graceful shutdown (not crash-safe; prefer -data-dir)")
		maxConns     = flag.Int("max-conns", 0, "max concurrently open connections (0 = unlimited)")
		idleTimeout  = flag.Duration("idle-timeout", 0, "close connections idle between statements this long (0 = never)")
		parallel     = flag.Int("parallel", 0, "default session parallelism (0 = auto)")
		batch        = flag.Int("batch", 0, "default session batch size (0 = engine default)")
		maxRows      = flag.Int64("max-rows", 0, "default per-query rows-materialized limit (0 = unlimited)")
		maxTime      = flag.Duration("max-time", 0, "default per-query execution time limit (0 = unlimited)")
		alg          = flag.String("alg", "auto", "default SGB algorithm: auto|allpairs|bounds|index")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight statements on shutdown")
		slowQuery    = flag.Duration("slow-query", 100*time.Millisecond, "slowlog threshold (0 logs every statement, negative disables)")
		slowlogSize  = flag.Int("slowlog-size", 128, "slow-query ring buffer capacity")
		traceSample  = flag.Int("trace-sample", engine.DefaultTraceSampling, "collect EXPLAIN ANALYZE actuals every Nth statement (1 = always, 0 = never)")
		autoAnalyze  = flag.Bool("auto-analyze", true, "re-ANALYZE tables in the background when their statistics go stale")
		memBudget    = flag.String("mem-budget", "", "process-wide query memory budget, e.g. 256M or 2G (empty/0 = unlimited)")
		maxActive    = flag.Int("max-active-queries", 0, "max statements executing concurrently (0 = unlimited)")
		admitQueue   = flag.Int("admission-queue", 0, "max statements waiting for an execution slot (0 = default 64)")
		probeEvery   = flag.Duration("probe-interval", 0, "degraded-store disk re-probe period (0 = default 1s)")
		faultBudget  = flag.Int64("fault-disk-budget", 0, "TESTING ONLY: inject ENOSPC after this many WAL bytes (0 = off)")
		showVersion  = flag.Bool("version", false, "print version and build info, then exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Printf("sgbd %s (%s, %s/%s)\n", buildVersion, runtime.Version(), runtime.GOOS, runtime.GOARCH)
		return
	}
	cfg := daemonConfig{
		addr: *addr, metricsAddr: *metricsAddr,
		dataDir: *dataDir, fsync: *fsyncPolicy, fsyncInterval: *fsyncEvery,
		checkpointInterval: *ckptEvery, snapshot: *snapshot,
		maxConns: *maxConns, idleTimeout: *idleTimeout,
		parallel: *parallel, batch: *batch, maxRows: *maxRows, maxTime: *maxTime,
		alg: *alg, drainTimeout: *drainTimeout,
		slowQuery: *slowQuery, slowlogSize: *slowlogSize, traceSample: *traceSample,
		autoAnalyze: *autoAnalyze,
		maxActive:   *maxActive, admitQueue: *admitQueue,
		probeInterval: *probeEvery, faultDiskBudget: *faultBudget,
	}
	var err error
	if cfg.memBudget, err = parseBytes(*memBudget); err != nil {
		fmt.Fprintln(os.Stderr, "sgbd: bad -mem-budget:", err)
		os.Exit(1)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "sgbd:", err)
		os.Exit(1)
	}
}

type daemonConfig struct {
	addr, metricsAddr  string
	dataDir            string
	fsync              string
	fsyncInterval      time.Duration
	checkpointInterval time.Duration
	snapshot           string
	maxConns           int
	idleTimeout        time.Duration
	parallel, batch    int
	maxRows            int64
	maxTime            time.Duration
	alg                string
	drainTimeout       time.Duration
	slowQuery          time.Duration
	slowlogSize        int
	traceSample        int
	autoAnalyze        bool
	memBudget          int64
	maxActive          int
	admitQueue         int
	probeInterval      time.Duration
	faultDiskBudget    int64
}

// parseBytes parses a byte count with an optional K/M/G suffix ("256M").
func parseBytes(s string) (int64, error) {
	if s == "" || s == "0" {
		return 0, nil
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm', 'M':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g', 'G':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("want a non-negative byte count like 256M, got %q", s)
	}
	return n * mult, nil
}

func run(cfg daemonConfig) error {
	if cfg.dataDir != "" && cfg.snapshot != "" {
		return fmt.Errorf("-data-dir and -snapshot are mutually exclusive")
	}

	// The HTTP side comes up before recovery so /healthz answers immediately
	// and /readyz honestly reports 503 while the WAL tail replays.
	reg := obs.NewRegistry()
	health := server.NewHealth()

	// Build identity and uptime. The fsync label reflects the effective
	// durability mode ("none" without -data-dir), so one scrape answers
	// "what is this process and how safe are its commits".
	fsyncLabel := "none"
	if cfg.dataDir != "" {
		fsyncLabel = cfg.fsync
	}
	reg.Gauge(fmt.Sprintf("sgbd_build_info{version=%q,go=%q,fsync=%q}",
		buildVersion, runtime.Version(), fsyncLabel)).Set(1)
	uptime := reg.Gauge("server_uptime_seconds")
	procStart := time.Now()

	var metricsSrv *http.Server
	var mux *http.ServeMux
	if cfg.metricsAddr != "" {
		ln, err := net.Listen("tcp", cfg.metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listen %s: %w", cfg.metricsAddr, err)
		}
		mux = http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			uptime.Set(time.Since(procStart).Seconds())
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			_ = reg.WritePrometheus(w)
		})
		health.Register(mux)
		// Standard pprof profiles, on the metrics listener rather than
		// http.DefaultServeMux so the wire port stays protocol-only.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		metricsSrv = &http.Server{Handler: mux}
		go func() { _ = metricsSrv.Serve(ln) }()
		fmt.Printf("metrics on http://%s/metrics\n", ln.Addr())
	}

	// Boot the database: durable store, legacy snapshot, or ephemeral. The
	// stream manager rides the commit path in every mode — as the store's
	// commit observer when durable (WAL sequences number the delta stream,
	// and recovery replay regenerates delta history), or hooked straight into
	// the engine otherwise.
	streams := stream.NewManager()
	var (
		db    *engine.DB
		store *server.Store
	)
	switch {
	case cfg.dataDir != "":
		policy, err := wal.ParseSyncPolicy(cfg.fsync)
		if err != nil {
			return err
		}
		var fs wal.FS
		if cfg.faultDiskBudget > 0 {
			// Testing hook: a FaultFS with an ENOSPC byte budget simulates the
			// disk filling up mid-run, driving the degraded read-only mode.
			ffs := wal.NewFaultFS(wal.OS)
			ffs.FailWithENOSPCAfter(cfg.faultDiskBudget)
			fs = ffs
			fmt.Printf("fault injection: WAL ENOSPC after %d bytes\n", cfg.faultDiskBudget)
		}
		store, err = server.OpenStore(server.StoreOptions{
			Dir:                cfg.dataDir,
			Policy:             policy,
			SyncInterval:       cfg.fsyncInterval,
			CheckpointInterval: cfg.checkpointInterval,
			Metrics:            reg,
			Observer:           streams,
			FS:                 fs,
			ProbeInterval:      cfg.probeInterval,
		})
		if err != nil {
			return err
		}
		db = store.DB()
		fmt.Printf("recovered data dir %s (%d tables, %d wal records replayed, fsync %s)\n",
			cfg.dataDir, len(db.Catalog().Names()), store.ReplayedRecords(), policy)
	case cfg.snapshot != "":
		var err error
		db, err = server.LoadSnapshotFile(cfg.snapshot)
		if os.IsNotExist(err) {
			fmt.Printf("snapshot %s not found, starting empty\n", cfg.snapshot)
			db = engine.NewDB()
		} else if err != nil {
			return err
		} else {
			fmt.Printf("loaded snapshot %s (%d tables)\n", cfg.snapshot, len(db.Catalog().Names()))
		}
		db.SetMetrics(reg)
		streams.AttachEngine(db)
	default:
		db = engine.NewDB()
		db.SetMetrics(reg)
		streams.AttachEngine(db)
	}

	switch cfg.alg {
	case "auto":
		db.SetSGBAlgorithmAuto()
	case "allpairs":
		db.SetSGBAlgorithm(core.AllPairs)
	case "bounds":
		db.SetSGBAlgorithm(core.BoundsChecking)
	case "index":
		db.SetSGBAlgorithm(core.IndexBounds)
	default:
		return fmt.Errorf("unknown -alg %q (want auto|allpairs|bounds|index)", cfg.alg)
	}
	db.SetParallelism(cfg.parallel)
	db.SetBatchSize(cfg.batch)
	db.SetLimits(engine.Limits{MaxRowsMaterialized: cfg.maxRows, MaxExecutionTime: cfg.maxTime})
	db.SetTraceSampling(cfg.traceSample)
	db.SetAutoAnalyze(cfg.autoAnalyze)
	// The budget arms only after recovery: boot-time WAL replay must never be
	// subject to admission control.
	db.SetMemoryBudget(cfg.memBudget)

	srv := server.New(db, server.Config{
		Addr:               cfg.addr,
		MaxConns:           cfg.maxConns,
		IdleTimeout:        cfg.idleTimeout,
		SlowQueryThreshold: cfg.slowQuery,
		SlowLogSize:        cfg.slowlogSize,
		Streams:            streams,
		Store:              store,
		MaxActiveQueries:   cfg.maxActive,
		AdmissionQueue:     cfg.admitQueue,
	})
	if err := srv.Start(); err != nil {
		return err
	}
	if mux != nil {
		// ServeMux registration is concurrency-safe, so the introspection
		// endpoints may join the already-serving metrics mux now that the
		// server exists.
		srv.RegisterDebug(mux)
	}
	fmt.Printf("listening on %s\n", srv.Addr())
	if store != nil {
		health.SetDegradedFunc(func() bool {
			degraded, _, _ := store.Degraded()
			return degraded
		})
	}
	health.SetReady(true)

	// Graceful shutdown: SIGINT/SIGTERM stops accepting, drains in-flight
	// statements for drainTimeout, then force-cancels what remains.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	sig := <-sigCh
	health.SetReady(false)
	fmt.Printf("received %s, draining (grace %v)\n", sig, cfg.drainTimeout)

	ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "sgbd: drain incomplete:", err)
	}
	if metricsSrv != nil {
		_ = metricsSrv.Shutdown(context.Background())
	}
	switch {
	case store != nil:
		if err := store.Close(); err != nil {
			return fmt.Errorf("closing data dir: %w", err)
		}
		fmt.Printf("final checkpoint written to %s\n", cfg.dataDir)
	case cfg.snapshot != "":
		if err := server.SaveSnapshotFile(db, cfg.snapshot); err != nil {
			return err
		}
		fmt.Printf("snapshot saved to %s\n", cfg.snapshot)
	}
	return nil
}
