// Command sgbd is the similarity group-by database server: it serves a
// shared engine.DB over the internal/wire TCP protocol and exports
// Prometheus metrics over HTTP.
//
//	sgbd -addr 127.0.0.1:7433 -metrics-addr 127.0.0.1:9433 \
//	     -snapshot data.sgb -max-conns 100 -idle-timeout 5m
//
// Flags:
//
//	-addr            TCP listen address for the wire protocol
//	-metrics-addr    HTTP listen address for /metrics ("" disables)
//	-snapshot FILE   load FILE at boot when it exists; save back on shutdown
//	-max-conns N     reject connections beyond N concurrently open (0 = off)
//	-idle-timeout D  close connections idle between statements for D (0 = off)
//	-parallel N      default session worker count (0 = auto/GOMAXPROCS)
//	-batch N         default session batch/morsel row count (0 = engine default)
//	-max-rows N      default per-query row-materialization limit (0 = off)
//	-max-time D      default per-query execution time limit (0 = off)
//	-alg NAME        default SGB algorithm: allpairs | bounds | index
//	-drain-timeout D grace period for in-flight statements on shutdown
//
// Per-connection sessions inherit these defaults and may override them with
// wire Set messages (sgbcli -connect maps \parallel, \batch, \limits, \alg
// onto those). SIGINT/SIGTERM drain gracefully: the listener closes, in-
// flight statements get -drain-timeout to finish, then the snapshot (if
// configured) is saved.
//
// sgbd prints "listening on <addr>" and "metrics on http://<addr>/metrics"
// to stdout once ready, so scripts using ":0" ports can scrape the actual
// addresses.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sgb/internal/core"
	"sgb/internal/engine"
	"sgb/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7433", "wire protocol listen address")
		metricsAddr  = flag.String("metrics-addr", "127.0.0.1:9433", "HTTP /metrics listen address (empty disables)")
		snapshot     = flag.String("snapshot", "", "snapshot file: loaded at boot if present, saved on shutdown")
		maxConns     = flag.Int("max-conns", 0, "max concurrently open connections (0 = unlimited)")
		idleTimeout  = flag.Duration("idle-timeout", 0, "close connections idle between statements this long (0 = never)")
		parallel     = flag.Int("parallel", 0, "default session parallelism (0 = auto)")
		batch        = flag.Int("batch", 0, "default session batch size (0 = engine default)")
		maxRows      = flag.Int64("max-rows", 0, "default per-query rows-materialized limit (0 = unlimited)")
		maxTime      = flag.Duration("max-time", 0, "default per-query execution time limit (0 = unlimited)")
		alg          = flag.String("alg", "index", "default SGB algorithm: allpairs|bounds|index")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight statements on shutdown")
	)
	flag.Parse()
	if err := run(*addr, *metricsAddr, *snapshot, *maxConns, *idleTimeout,
		*parallel, *batch, *maxRows, *maxTime, *alg, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "sgbd:", err)
		os.Exit(1)
	}
}

func run(addr, metricsAddr, snapshot string, maxConns int, idleTimeout time.Duration,
	parallel, batch int, maxRows int64, maxTime time.Duration, alg string,
	drainTimeout time.Duration) error {

	db, err := openDB(snapshot)
	if err != nil {
		return err
	}
	switch alg {
	case "allpairs":
		db.SetSGBAlgorithm(core.AllPairs)
	case "bounds":
		db.SetSGBAlgorithm(core.BoundsChecking)
	case "index":
		db.SetSGBAlgorithm(core.IndexBounds)
	default:
		return fmt.Errorf("unknown -alg %q (want allpairs|bounds|index)", alg)
	}
	db.SetParallelism(parallel)
	db.SetBatchSize(batch)
	db.SetLimits(engine.Limits{MaxRowsMaterialized: maxRows, MaxExecutionTime: maxTime})

	srv := server.New(db, server.Config{
		Addr:        addr,
		MaxConns:    maxConns,
		IdleTimeout: idleTimeout,
	})
	if err := srv.Start(); err != nil {
		return err
	}
	fmt.Printf("listening on %s\n", srv.Addr())

	var metricsSrv *http.Server
	if metricsAddr != "" {
		ln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listen %s: %w", metricsAddr, err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			_ = db.Metrics().WritePrometheus(w)
		})
		metricsSrv = &http.Server{Handler: mux}
		go func() { _ = metricsSrv.Serve(ln) }()
		fmt.Printf("metrics on http://%s/metrics\n", ln.Addr())
	}

	// Graceful shutdown: SIGINT/SIGTERM stops accepting, drains in-flight
	// statements for drainTimeout, then force-cancels what remains.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	sig := <-sigCh
	fmt.Printf("received %s, draining (grace %v)\n", sig, drainTimeout)

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "sgbd: drain incomplete:", err)
	}
	if metricsSrv != nil {
		_ = metricsSrv.Shutdown(context.Background())
	}
	if snapshot != "" {
		if err := server.SaveSnapshotFile(db, snapshot); err != nil {
			return err
		}
		fmt.Printf("snapshot saved to %s\n", snapshot)
	}
	return nil
}

// openDB boots the database: from the snapshot file when one is configured
// and present, empty otherwise.
func openDB(snapshot string) (*engine.DB, error) {
	if snapshot == "" {
		return engine.NewDB(), nil
	}
	db, err := server.LoadSnapshotFile(snapshot)
	if os.IsNotExist(err) {
		fmt.Printf("snapshot %s not found, starting empty\n", snapshot)
		return engine.NewDB(), nil
	}
	if err != nil {
		return nil, err
	}
	fmt.Printf("loaded snapshot %s (%d tables)\n", snapshot, len(db.Catalog().Names()))
	return db, nil
}
