// Command sgbbench regenerates the tables and figures of the paper's
// evaluation section. Each experiment prints a text table whose shape —
// algorithm orderings, speedup factors, growth with ε and data size — mirrors
// the corresponding paper artifact.
//
// Usage:
//
//	sgbbench -exp all                 # everything, laptop-scale defaults
//	sgbbench -exp fig9 -fig9n 100000  # a bigger ε sweep
//	sgbbench -exp table2 -sf 4
//	sgbbench -json BENCH_1.json       # fixed probe suite → machine-readable
//	                                  # snapshot (wall times + SGB counters)
//	sgbbench -json BENCH_3.json -workers 4 -batch 512
//	                                  # probe suite with an explicit morsel
//	                                  # worker count and batch size; each probe
//	                                  # also runs serially and the snapshot
//	                                  # records speedup_vs_serial
//
// The -full flag raises every size knob towards the paper's configuration
// (minutes of runtime rather than seconds).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"sgb/internal/bench"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: all, table1, table2, fig9, fig10, fig11, fig12, ablation")
		fig9n      = flag.Int("fig9n", 0, "point count for the Figure 9 eps sweep (0 = default)")
		sfs        = flag.String("sfs", "", "comma-separated scale factors for Figures 10/12 (empty = default)")
		custSF     = flag.Int("custsf", 0, "customer rows per scale factor unit (0 = default 300)")
		sizes      = flag.String("fig11sizes", "", "comma-separated dataset sizes for Figure 11 (empty = default)")
		table1N    = flag.String("table1ns", "", "comma-separated size ladder for Table 1 (empty = default)")
		sf         = flag.Float64("sf", 2, "scale factor for the Table 2 run")
		eps        = flag.Float64("eps", 0.2, "similarity threshold for the Table 2 run")
		seed       = flag.Int64("seed", 1, "generator seed")
		full       = flag.Bool("full", false, "approach the paper's data sizes (much slower)")
		csvDir     = flag.String("csvdir", "", "also write each report as CSV into this directory")
		jsonOut    = flag.String("json", "", "run the fixed probe suite and write a machine-readable metrics snapshot to this file (e.g. BENCH_1.json), instead of the experiments")
		jsonN      = flag.Int("jsonn", 5000, "check-in count for the -json probe suite")
		timeout    = flag.Duration("timeout", 0, "per-probe wall-clock bound for the -json suite; a probe exceeding it fails the run (0 = unbounded)")
		workers    = flag.Int("workers", 0, "morsel worker count for the -json probe suite's parallel runs (0 = GOMAXPROCS)")
		batch      = flag.Int("batch", 0, "batch/morsel row count for the -json probe suite (0 = engine default)")
		gate       = flag.String("gate", "", "with -json: baseline snapshot (e.g. BENCH_7.json) to gate against; exits non-zero if any kernel probe's speedup-vs-scalar regressed >20% against it")
		planGate   = flag.Float64("planner-gate", 0, "with -json: fail if any planner probe's auto p50 exceeds this multiple of its best manual algorithm's p50 (0 = off; CI uses 1.25)")
		streamGate = flag.Float64("stream-gate", 0, "with -json: fail if any stream probe's incremental-maintenance speedup over full recompute falls below this ratio (0 = off; CI uses 10)")
	)
	flag.Parse()

	if *jsonOut != "" {
		doc, err := writeBenchJSON(*jsonOut, *jsonN, *seed, *timeout, *workers, *batch)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sgbbench:", err)
			os.Exit(1)
		}
		if *gate != "" {
			if err := gateAgainst(doc, *gate); err != nil {
				fmt.Fprintln(os.Stderr, "sgbbench:", err)
				os.Exit(1)
			}
		}
		if *planGate > 0 {
			if err := gatePlanner(doc, *planGate); err != nil {
				fmt.Fprintln(os.Stderr, "sgbbench:", err)
				os.Exit(1)
			}
		}
		if *streamGate > 0 {
			if err := gateStream(doc, *streamGate); err != nil {
				fmt.Fprintln(os.Stderr, "sgbbench:", err)
				os.Exit(1)
			}
		}
		return
	}
	if *gate != "" || *planGate > 0 || *streamGate > 0 {
		fmt.Fprintln(os.Stderr, "sgbbench: -gate/-planner-gate/-stream-gate require -json")
		os.Exit(2)
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "sgbbench:", err)
			os.Exit(1)
		}
		csvOutDir = *csvDir
	}

	sc := bench.DefaultScale()
	sc.Seed = *seed
	if *full {
		sc.Fig9N = 200000
		sc.Fig10SFs = []float64{1, 2, 4, 8, 16, 32, 60}
		sc.CustomersPerSF = 1500
		sc.Fig11Sizes = []int{50000, 100000, 200000, 400000}
		sc.Table1Ns = []int{2000, 4000, 8000, 16000, 32000}
	}
	if *fig9n > 0 {
		sc.Fig9N = *fig9n
	}
	if *custSF > 0 {
		sc.CustomersPerSF = *custSF
	}
	if *sfs != "" {
		sc.Fig10SFs = parseFloats(*sfs)
	}
	if *sizes != "" {
		sc.Fig11Sizes = parseInts(*sizes)
	}
	if *table1N != "" {
		sc.Table1Ns = parseInts(*table1N)
	}

	run := func(name string) error {
		switch name {
		case "table1":
			rep, err := bench.Table1(sc)
			if err != nil {
				return err
			}
			return printAll([]*bench.Report{rep}, nil)
		case "table2":
			rep, err := bench.Table2(sc, *sf, *eps)
			if err != nil {
				return err
			}
			return printAll([]*bench.Report{rep}, nil)
		case "fig9":
			return printAll(bench.Fig9(sc))
		case "fig10":
			return printAll(bench.Fig10(sc))
		case "fig11":
			return printAll(bench.Fig11(sc))
		case "fig12":
			return printAll(bench.Fig12(sc))
		case "ablation":
			return printAll(bench.Ablations(sc))
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"table1", "table2", "fig9", "fig10", "fig11", "fig12", "ablation"}
	}
	for _, name := range names {
		if err := run(name); err != nil {
			fmt.Fprintf(os.Stderr, "sgbbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}

var csvOutDir string

func printAll(reports []*bench.Report, err error) error {
	if err != nil {
		return err
	}
	for _, r := range reports {
		fmt.Println(r)
		if csvOutDir != "" {
			if err := writeCSV(r); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeCSV(r *bench.Report) error {
	path := filepath.Join(csvOutDir, r.FileName())
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = r.CSV(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	return err
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sgbbench: bad number %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintf(os.Stderr, "sgbbench: bad integer %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}
