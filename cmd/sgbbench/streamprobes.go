package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"sgb/internal/checkin"
	"sgb/internal/engine"
	"sgb/internal/stream"
)

// The stream probes measure the incremental-view-maintenance claim: once a
// materialized SGB view exists, keeping it fresh after a single-row insert
// must be far cheaper than the alternative — rebuilding the view's grouped
// state from scratch, which is what a system without incremental maintenance
// redoes on every refresh. Each probe loads the check-in workload, times that
// full recompute (a DROP + CREATE of the view, whose bootstrap feeds all n
// rows through the view's grouper), attaches a fan of subscribers, and then
// times a burst of single-row inserts end to end: the incremental sample is
// the committed write including inline view maintenance, and the fan-out
// sample extends to the moment every subscriber has drained that commit's
// deltas. speedup_vs_recompute is the machine-portable signal (both sides run
// the same maintenance code path in the same process on the same host); the
// -stream-gate flag turns it into a CI floor.

// streamProbeResult is one materialized-view maintenance probe in the JSON
// document.
type streamProbeResult struct {
	Name             string  `json:"name"`
	View             string  `json:"view"`
	N                int     `json:"n"`
	Eps              float64 `json:"eps"`
	Subscribers      int     `json:"subscribers"`
	Inserts          int     `json:"inserts"`
	IncrementalP50MS float64 `json:"incremental_insert_p50_ms"`
	IncrementalP95MS float64 `json:"incremental_insert_p95_ms"`
	RecomputeP50MS   float64 `json:"recompute_p50_ms"`
	Speedup          float64 `json:"speedup_vs_recompute"`
	FanoutP50MS      float64 `json:"fanout_p50_ms"`
	FanoutP95MS      float64 `json:"fanout_p95_ms"`
	DeltasTotal      uint64  `json:"deltas_total"`
	Rebuilds         uint64  `json:"rebuilds"`
	Groups           int     `json:"groups"`
	Members          int     `json:"members"`
}

// streamProbeInserts is the single-row insert burst per probe: enough samples
// that the p95 is a distribution tail rather than a copy of the max.
const streamProbeInserts = 200

// streamProbeSubs is the subscriber fan attached to each probe's view.
const streamProbeSubs = 8

func fmtCoord(v float64) string {
	return strconv.FormatFloat(v, 'f', 6, 64)
}

// runStreamProbes runs one maintenance probe per SGB mode over the check-in
// workload. Each probe gets its own engine and manager so maintenance cost is
// measured against exactly one view and the main document's metrics snapshot
// is not polluted.
func runStreamProbes(n int, seed int64, timeout time.Duration) ([]streamProbeResult, error) {
	const eps = 0.25
	type probe struct {
		name string
		mode string
	}
	probes := []probe{
		{"stream_any_l2", fmt.Sprintf("DISTANCE-TO-ANY L2 WITHIN %g", eps)},
		{"stream_all_join_linf", fmt.Sprintf("DISTANCE-TO-ALL LINF WITHIN %g ON-OVERLAP JOIN-ANY", eps)},
	}

	exec := func(db *engine.DB, q string) (time.Duration, error) {
		ctx, cancel := context.Background(), func() {}
		if timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, timeout)
		}
		start := time.Now()
		_, err := db.ExecContext(ctx, q)
		wall := time.Since(start)
		cancel()
		return wall, err
	}
	toMS := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

	var out []streamProbeResult
	for pi, p := range probes {
		db := engine.NewDB()
		mgr := stream.NewManager()
		mgr.AttachEngine(db)
		cs := checkin.Generate(checkin.Config{N: n, Seed: seed})
		if err := checkin.Load(db, "checkins_live", cs); err != nil {
			return nil, err
		}

		// The recompute baseline: what a refresh without incremental
		// maintenance pays — rebuilding the view's grouped state from all n
		// rows. Timed as the CREATE of the view itself (its bootstrap feeds
		// every row through the view's grouper), with the preceding DROP
		// untimed. The last iteration leaves the view in place.
		query := fmt.Sprintf("SELECT lat, lon FROM checkins_live GROUP BY lat, lon %s", p.mode)
		view := "stream_v"
		createStmt := fmt.Sprintf("CREATE MATERIALIZED VIEW %s AS %s", view, query)
		runtime.GC()
		recompute := make([]time.Duration, 0, probeReps)
		for i := 0; i < probeReps; i++ {
			if i > 0 {
				if _, err := db.Exec("DROP MATERIALIZED VIEW " + view); err != nil {
					return nil, fmt.Errorf("stream probe %s (drop view): %w", p.name, err)
				}
			}
			wall, err := exec(db, createStmt)
			if err != nil {
				return nil, fmt.Errorf("stream probe %s (recompute): %w", p.name, err)
			}
			recompute = append(recompute, wall)
		}
		sort.Slice(recompute, func(i, j int) bool { return recompute[i] < recompute[j] })

		// Attach the subscriber fan at the current head so only live deltas
		// flow.
		var head uint64
		for _, vs := range mgr.Views() {
			if vs.Name == view {
				head = vs.LastSeq
			}
		}
		subs := make([]*stream.Attach, streamProbeSubs)
		for i := range subs {
			at, err := mgr.Subscribe(view, head, 4096)
			if err != nil {
				return nil, fmt.Errorf("stream probe %s (subscribe): %w", p.name, err)
			}
			subs[i] = at
		}

		// The timed burst: fresh check-ins from the same mixture, one insert
		// per statement. Delta publication is synchronous with the commit, so
		// after Exec returns each subscriber channel already holds every delta
		// for that statement: block for the first, drain the rest.
		extra := checkin.Generate(checkin.Config{N: streamProbeInserts, Seed: seed + 1000 + int64(pi)})
		runtime.GC()
		inserts := make([]time.Duration, 0, streamProbeInserts)
		fanouts := make([]time.Duration, 0, streamProbeInserts)
		for _, c := range extra {
			stmt := fmt.Sprintf("INSERT INTO checkins_live VALUES (%d, %s, %s)",
				c.UserID, fmtCoord(c.Lat), fmtCoord(c.Lon))
			start := time.Now()
			if _, err := exec(db, stmt); err != nil {
				return nil, fmt.Errorf("stream probe %s (insert): %w", p.name, err)
			}
			inserts = append(inserts, time.Since(start))
			for si, at := range subs {
				select {
				case _, ok := <-at.Sub.C:
					if !ok {
						return nil, fmt.Errorf("stream probe %s: subscriber %d dropped", p.name, si)
					}
				case <-time.After(10 * time.Second):
					return nil, fmt.Errorf("stream probe %s: subscriber %d saw no delta within 10s", p.name, si)
				}
				for drained := false; !drained; {
					select {
					case _, ok := <-at.Sub.C:
						if !ok {
							return nil, fmt.Errorf("stream probe %s: subscriber %d dropped", p.name, si)
						}
					default:
						drained = true
					}
				}
			}
			fanouts = append(fanouts, time.Since(start))
		}
		sort.Slice(inserts, func(i, j int) bool { return inserts[i] < inserts[j] })
		sort.Slice(fanouts, func(i, j int) bool { return fanouts[i] < fanouts[j] })

		res := streamProbeResult{
			Name:             p.name,
			View:             query,
			N:                n,
			Eps:              eps,
			Subscribers:      streamProbeSubs,
			Inserts:          streamProbeInserts,
			IncrementalP50MS: toMS(percentile(inserts, 50)),
			IncrementalP95MS: toMS(percentile(inserts, 95)),
			RecomputeP50MS:   toMS(percentile(recompute, 50)),
			FanoutP50MS:      toMS(percentile(fanouts, 50)),
			FanoutP95MS:      toMS(percentile(fanouts, 95)),
		}
		if res.IncrementalP50MS > 0 {
			res.Speedup = res.RecomputeP50MS / res.IncrementalP50MS
		}
		for _, vs := range mgr.Views() {
			if vs.Name == view {
				res.DeltasTotal = vs.DeltasTotal
				res.Rebuilds = vs.Rebuilds
				res.Groups = vs.Groups
				res.Members = vs.Members
			}
		}
		if res.Members != n+streamProbeInserts {
			return nil, fmt.Errorf("stream probe %s: view covers %d rows, want %d",
				p.name, res.Members, n+streamProbeInserts)
		}
		for _, at := range subs {
			at.Sub.Close()
		}
		out = append(out, res)
	}
	return out, nil
}

// gateStream fails when incremental maintenance lost its reason to exist: any
// stream probe whose per-insert p50, including inline view maintenance, is
// not at least minSpeedup times cheaper than the full recompute.
func gateStream(doc *benchDoc, minSpeedup float64) error {
	var failures []string
	for _, sp := range doc.StreamProbes {
		if sp.Speedup < minSpeedup {
			failures = append(failures, fmt.Sprintf(
				"%s: incremental p50 %.4fms vs recompute p50 %.3fms — speedup %.1fx below %.1fx",
				sp.Name, sp.IncrementalP50MS, sp.RecomputeP50MS, sp.Speedup, minSpeedup))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("stream maintenance gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(os.Stderr, "gate: %d stream probes at least %.0fx faster than recompute\n",
		len(doc.StreamProbes), minSpeedup)
	return nil
}
