package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"sgb/internal/checkin"
	"sgb/internal/core"
	"sgb/internal/engine"
	"sgb/internal/geom"
	"sgb/internal/obs"
)

// The JSON probe suite is a fixed, fast workload whose output is committed
// as BENCH_<n>.json so the perf trajectory of the SGB pipeline is tracked
// across PRs: each probe records its query shape, input size, ε, wall time,
// and the cost counters of the paper's analysis (distance computations,
// rectangle tests, window queries, merges), plus a full engine metrics
// snapshot at the end of the run.
//
// Schema v2 additionally runs every probe twice — once serial, once with the
// configured morsel worker count — and records both wall times plus the
// speedup, so the parallel executor's trajectory is tracked alongside the
// algorithmic counters. Probes the planner refuses to parallelize (SGB-All
// modes, non-mergeable aggregates) naturally report a speedup near 1.
//
// Schema v3 raises the rep count and records the p50/p95/p99 wall times
// (nearest-rank over the parallel variant's samples) next to the minimum, so
// tail-latency regressions are visible even when the best-case time holds.
// Two additive extensions track the columnar execution layer: each SGB probe
// also runs with the columnar fast path disabled (wall_rowpath_ms /
// columnar_speedup), and a kernel_probes section times the geom batch kernels
// against an equivalent scalar geom.Within loop over the same column.

// probeResult is one probe run in the JSON document.
type probeResult struct {
	Name          string  `json:"name"`
	Query         string  `json:"query"`
	Algorithm     string  `json:"algorithm"`
	N             int     `json:"n"`
	Eps           float64 `json:"eps"`
	WallMS        float64 `json:"wall_ms"`
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
	P99MS         float64 `json:"p99_ms"`
	WallSerialMS  float64 `json:"wall_serial_ms"`
	Speedup       float64 `json:"speedup_vs_serial"`
	WallRowMS     float64 `json:"wall_rowpath_ms,omitempty"`
	ColSpeedup    float64 `json:"columnar_speedup,omitempty"`
	Workers       int     `json:"workers"`
	Batch         int     `json:"batch"`
	Rows          int     `json:"rows"`
	DistanceComps int64   `json:"distance_comps"`
	RectTests     int64   `json:"rect_tests"`
	HullTests     int64   `json:"hull_tests"`
	WindowQueries int64   `json:"window_queries"`
	IndexUpdates  int64   `json:"index_updates"`
	GroupsMerged  int64   `json:"groups_merged"`
	Rounds        int     `json:"rounds"`
}

// kernelProbeResult times one metric's batch distance kernel against the
// scalar per-point loop it replaced, over the same coordinate column. The
// speedup ratio is the machine-portable signal: both variants run on the same
// host within the same process, so their quotient isolates the layout and
// vectorization effect from the machine.
type kernelProbeResult struct {
	Name        string  `json:"name"`
	Metric      string  `json:"metric"`
	N           int     `json:"n"`
	Dim         int     `json:"dim"`
	Eps         float64 `json:"eps"`
	KernelP50MS float64 `json:"kernel_p50_ms"`
	ScalarP50MS float64 `json:"scalar_p50_ms"`
	Speedup     float64 `json:"speedup_vs_scalar"`
	Matches     int     `json:"matches"`
}

// plannerProbeResult is one cost-based-planner probe: the same query timed
// under every manual \alg override and under auto selection, plus what the
// planner actually chose (parsed from EXPLAIN) and how far its cardinality
// estimate was from the measured row count (from EXPLAIN ANALYZE). The
// machine-portable signals are the ratios: auto_vs_best ≈ 1 means cost-based
// selection found the best manual choice, speedup_vs_default > 1 means it
// beat the old fixed on-the-fly-index default.
type plannerProbeResult struct {
	Name             string             `json:"name"`
	Query            string             `json:"query"`
	N                int                `json:"n"`
	Eps              float64            `json:"eps"`
	ChosenAlg        string             `json:"chosen_alg"`
	AutoP50MS        float64            `json:"auto_p50_ms"`
	ManualP50MS      map[string]float64 `json:"manual_p50_ms"`
	BestManualAlg    string             `json:"best_manual_alg"`
	BestManualP50MS  float64            `json:"best_manual_p50_ms"`
	DefaultP50MS     float64            `json:"default_p50_ms"`
	AutoVsBest       float64            `json:"auto_vs_best"`
	SpeedupVsDefault float64            `json:"speedup_vs_default"`
	EstRows          float64            `json:"est_rows"`
	ActualRows       int                `json:"actual_rows"`
	EstRowsError     float64            `json:"est_rows_error"`
}

// benchDoc is the whole machine-readable snapshot. planner_probes and
// stream_probes are schema-v3-additive sections: older documents simply lack
// them.
type benchDoc struct {
	SchemaVersion int                  `json:"schema_version"`
	Dataset       string               `json:"dataset"`
	N             int                  `json:"n"`
	Seed          int64                `json:"seed"`
	Workers       int                  `json:"workers"`
	Batch         int                  `json:"batch"`
	GOMAXPROCS    int                  `json:"gomaxprocs"`
	Runs          []probeResult        `json:"runs"`
	KernelProbes  []kernelProbeResult  `json:"kernel_probes"`
	PlannerProbes []plannerProbeResult `json:"planner_probes,omitempty"`
	StreamProbes  []streamProbeResult  `json:"stream_probes,omitempty"`
	Metrics       obs.Snapshot         `json:"metrics"`
}

// probeReps is how many times each probe variant runs. The minimum wall time
// is reported for the speedup ratio (it filters scheduler noise on the
// sub-millisecond probes), and since schema v3 the sample distribution also
// yields p50/p95/p99 — enough reps that the p99 is a real observation rather
// than a copy of the max of three.
const probeReps = 9

// percentile returns the nearest-rank p-th percentile of sorted (ascending)
// samples: the smallest sample with at least p percent of the distribution at
// or below it.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// runKernelProbes times the geom batch kernels (one WithinMask call over a
// whole coordinate column) against the scalar equivalent (a geom.Within call
// per point) on identical deterministic data, one probe per metric. Each
// sample times kernelIters full passes so the sub-microsecond single-pass
// cost accumulates to a stable measurement.
func runKernelProbes(n int, seed int64) []kernelProbeResult {
	const (
		dim         = 2
		eps         = 0.25
		kernelIters = 64
	)
	r := rand.New(rand.NewSource(seed))
	cols := geom.MakeCols(dim, n)
	for d := 0; d < dim; d++ {
		col := cols.Col(d)
		for i := range col {
			col[i] = r.Float64() * 4
		}
	}
	q := geom.Point{2, 2}
	dists := make([]float64, n)
	mask := make([]bool, n)
	pt := make(geom.Point, dim)

	time50 := func(f func()) float64 {
		samples := make([]time.Duration, 0, probeReps)
		for rep := 0; rep < probeReps; rep++ {
			start := time.Now()
			f()
			samples = append(samples, time.Since(start))
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		return float64(percentile(samples, 50).Nanoseconds()) / 1e6
	}

	var out []kernelProbeResult
	for _, m := range []geom.Metric{geom.L2, geom.LInf, geom.L1} {
		var kernelMatches, scalarMatches int
		kernelP50 := time50(func() {
			for it := 0; it < kernelIters; it++ {
				kernelMatches = geom.WithinMask(m, cols, q, eps, dists, mask)
			}
		})
		scalarP50 := time50(func() {
			for it := 0; it < kernelIters; it++ {
				cnt := 0
				for i := 0; i < n; i++ {
					pt = cols.PointAt(i, pt)
					if geom.Within(m, pt, q, eps) {
						cnt++
					}
				}
				scalarMatches = cnt
			}
		})
		res := kernelProbeResult{
			Name:        "kernel_within_mask_" + strings.ToLower(m.String()),
			Metric:      m.String(),
			N:           n,
			Dim:         dim,
			Eps:         eps,
			KernelP50MS: kernelP50,
			ScalarP50MS: scalarP50,
			Matches:     kernelMatches,
		}
		if kernelMatches != scalarMatches {
			// The kernels are pinned bit-identical to geom.Within by the geom
			// tests; a disagreement here means the probe itself is broken.
			panic(fmt.Sprintf("kernel probe %s: kernel found %d matches, scalar %d",
				res.Name, kernelMatches, scalarMatches))
		}
		if kernelP50 > 0 {
			res.Speedup = scalarP50 / kernelP50
		}
		out = append(out, res)
	}
	return out
}

// writeBenchJSON runs the probe suite and writes the document to path. A
// non-zero timeout bounds each probe's execution through the engine's
// cancellation machinery, so a runaway probe aborts mid-query rather than
// hanging the suite. workers <= 0 resolves to GOMAXPROCS; batch <= 0 keeps
// the engine default. The written document is also returned for the -gate
// comparison.
func writeBenchJSON(path string, n int, seed int64, timeout time.Duration, workers, batch int) (*benchDoc, error) {
	db := engine.NewDB()
	cs := checkin.Generate(checkin.Config{N: n, Seed: seed})
	if err := checkin.Load(db, "checkins", cs); err != nil {
		return nil, err
	}
	db.SetBatchSize(batch)
	db.SetParallelism(workers)
	workers = db.Parallelism()
	batch = db.BatchSize()

	const eps = 0.25
	type probe struct {
		name  string
		query string
		eps   float64
		alg   core.Algorithm
	}
	probes := []probe{
		{"sgb_all_join_any_l2_allpairs",
			fmt.Sprintf("SELECT count(*) FROM checkins GROUP BY lat, lon DISTANCE-TO-ALL L2 WITHIN %g ON-OVERLAP JOIN-ANY", eps),
			eps, core.AllPairs},
		{"sgb_all_join_any_l2_index",
			fmt.Sprintf("SELECT count(*) FROM checkins GROUP BY lat, lon DISTANCE-TO-ALL L2 WITHIN %g ON-OVERLAP JOIN-ANY", eps),
			eps, core.IndexBounds},
		{"sgb_all_eliminate_linf_index",
			fmt.Sprintf("SELECT count(*) FROM checkins GROUP BY lat, lon DISTANCE-TO-ALL LINF WITHIN %g ON-OVERLAP ELIMINATE", eps),
			eps, core.IndexBounds},
		{"sgb_all_form_new_group_linf_bounds",
			fmt.Sprintf("SELECT count(*) FROM checkins GROUP BY lat, lon DISTANCE-TO-ALL LINF WITHIN %g ON-OVERLAP FORM-NEW-GROUP", eps),
			eps, core.BoundsChecking},
		{"sgb_any_l2_index",
			fmt.Sprintf("SELECT count(*) FROM checkins GROUP BY lat, lon DISTANCE-TO-ANY L2 WITHIN %g", eps),
			eps, core.IndexBounds},
		{"hash_group_by_baseline",
			"SELECT user_id, count(*) FROM checkins GROUP BY user_id",
			0, core.IndexBounds},
		{"scan_filter_hash_agg",
			"SELECT user_id, count(*), avg(lat) FROM checkins WHERE lon > -96 GROUP BY user_id",
			0, core.IndexBounds},
	}

	// timeQuery runs q probeReps times under the current session settings and
	// returns the ascending-sorted wall-time samples with the fastest run's
	// result.
	timeQuery := func(q string, timeout time.Duration) ([]time.Duration, *engine.Result, error) {
		// Settle the heap first so a variant's samples are not taxed with
		// collecting garbage produced by the previous variant's runs — the
		// suite grew enough per-probe variants (serial, row-path, parallel)
		// that carry-over GC debt visibly skewed later probes.
		runtime.GC()
		samples := make([]time.Duration, 0, probeReps)
		best := time.Duration(0)
		var bestRes *engine.Result
		for i := 0; i < probeReps; i++ {
			ctx, cancel := context.Background(), func() {}
			if timeout > 0 {
				ctx, cancel = context.WithTimeout(ctx, timeout)
			}
			start := time.Now()
			res, err := db.ExecContext(ctx, q)
			wall := time.Since(start)
			cancel()
			if err != nil {
				return nil, nil, err
			}
			samples = append(samples, wall)
			if bestRes == nil || wall < best {
				best, bestRes = wall, res
			}
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		return samples, bestRes, nil
	}

	doc := benchDoc{
		SchemaVersion: 3, Dataset: "checkin", N: n, Seed: seed,
		Workers: workers, Batch: batch, GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, p := range probes {
		db.SetSGBAlgorithm(p.alg)

		db.SetParallelism(1)
		serialSamples, serialRes, err := timeQuery(p.query, timeout)
		if err != nil {
			return nil, fmt.Errorf("probe %s (serial): %w", p.name, err)
		}
		serialWall := serialSamples[0]

		// SGB probes additionally run serially with the columnar fast path
		// disabled, so the snapshot separates the layout effect (row vs
		// columnar at one worker) from the parallelism effect.
		var rowWall time.Duration
		if p.eps > 0 {
			db.SetColumnar(false)
			rowSamples, rowRes, err := timeQuery(p.query, timeout)
			db.SetColumnar(true)
			if err != nil {
				return nil, fmt.Errorf("probe %s (row path): %w", p.name, err)
			}
			if len(rowRes.Rows) != len(serialRes.Rows) {
				return nil, fmt.Errorf("probe %s: row path returned %d rows, columnar %d",
					p.name, len(rowRes.Rows), len(serialRes.Rows))
			}
			rowWall = rowSamples[0]
		}

		db.SetParallelism(workers)
		samples, res, err := timeQuery(p.query, timeout)
		if err != nil {
			return nil, fmt.Errorf("probe %s: %w", p.name, err)
		}
		wall := samples[0]
		if len(res.Rows) != len(serialRes.Rows) {
			return nil, fmt.Errorf("probe %s: parallel returned %d rows, serial %d",
				p.name, len(res.Rows), len(serialRes.Rows))
		}

		run := probeResult{
			Name:         p.name,
			Query:        p.query,
			Algorithm:    p.alg.String(),
			N:            n,
			Eps:          p.eps,
			WallMS:       float64(wall.Nanoseconds()) / 1e6,
			P50MS:        float64(percentile(samples, 50).Nanoseconds()) / 1e6,
			P95MS:        float64(percentile(samples, 95).Nanoseconds()) / 1e6,
			P99MS:        float64(percentile(samples, 99).Nanoseconds()) / 1e6,
			WallSerialMS: float64(serialWall.Nanoseconds()) / 1e6,
			Workers:      workers,
			Batch:        batch,
			Rows:         len(res.Rows),
		}
		if wall > 0 {
			run.Speedup = float64(serialWall) / float64(wall)
		}
		if rowWall > 0 && serialWall > 0 {
			run.WallRowMS = float64(rowWall.Nanoseconds()) / 1e6
			run.ColSpeedup = float64(rowWall) / float64(serialWall)
		}
		if s := db.LastSGBStats(); s != nil {
			run.DistanceComps = s.DistanceComps
			run.RectTests = s.RectTests
			run.HullTests = s.HullTests
			run.WindowQueries = s.WindowQueries
			run.IndexUpdates = s.IndexUpdates
			run.GroupsMerged = s.GroupsMerged
			run.Rounds = s.Rounds
		}
		doc.Runs = append(doc.Runs, run)
	}
	doc.KernelProbes = runKernelProbes(n, seed)
	planner, err := runPlannerProbes(db, n, seed, timeout)
	if err != nil {
		return nil, err
	}
	doc.PlannerProbes = planner
	streams, err := runStreamProbes(n, seed, timeout)
	if err != nil {
		return nil, err
	}
	doc.StreamProbes = streams
	doc.Metrics = db.Metrics().Snapshot()

	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(doc)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return &doc, nil
}

// chosenAlgRe extracts the SGB algorithm label from an EXPLAIN plan line.
var chosenAlgRe = regexp.MustCompile(`\[(All-Pairs|Bounds-Checking|on-the-fly Index)\]`)

// estActualRe extracts the planner estimate and the measured row count from
// an EXPLAIN ANALYZE root line.
var estActualRe = regexp.MustCompile(`est_rows=(\d+).*actual rows=(\d+)`)

// plannerReps is the per-variant rep count for the planner probes: higher
// than probeReps because the small-table probes finish in ~0.1ms, where a
// single scheduler hiccup shifts the p50 of a small sample enough to trip the
// gate.
const plannerReps = 15

// plannerVariant is one timed configuration (a manual algorithm override or
// auto) of a planner probe.
type plannerVariant struct {
	name string
	set  func()
}

// timeVariantsP50 times every variant of one query with interleaved reps:
// round-robin over the variants, one execution each per round, p50 per
// variant. Interleaving matters because the variants are compared against
// each other — timing each in its own sequential block lets load drift
// during the run bias whole blocks, which showed up as an auto run measuring
// far from the manual run of the very algorithm it had chosen. The first
// round is a discarded warmup.
func timeVariantsP50(db *engine.DB, q string, variants []plannerVariant, timeout time.Duration) (map[string]time.Duration, map[string]*engine.Result, error) {
	samples := make(map[string][]time.Duration, len(variants))
	results := make(map[string]*engine.Result, len(variants))
	fastest := make(map[string]time.Duration, len(variants))
	for rep := 0; rep <= plannerReps; rep++ {
		runtime.GC()
		for i := range variants {
			// Rotate the starting variant: the first execution after the GC
			// pays a cache-cold penalty, and it must not always hit the same
			// variant.
			v := variants[(i+rep)%len(variants)]
			v.set()
			ctx, cancel := context.Background(), func() {}
			if timeout > 0 {
				ctx, cancel = context.WithTimeout(ctx, timeout)
			}
			start := time.Now()
			res, err := db.ExecContext(ctx, q)
			wall := time.Since(start)
			cancel()
			if err != nil {
				return nil, nil, fmt.Errorf("%s: %w", v.name, err)
			}
			if rep == 0 {
				continue // warmup round
			}
			samples[v.name] = append(samples[v.name], wall)
			if _, ok := results[v.name]; !ok || wall < fastest[v.name] {
				fastest[v.name], results[v.name] = wall, res
			}
		}
	}
	p50s := make(map[string]time.Duration, len(variants))
	for name, s := range samples {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		p50s[name] = percentile(s, 50)
	}
	return p50s, results, nil
}

// runPlannerProbes times the cost-based SGB algorithm selection against every
// manual override on shapes where the best choice differs: a small table
// (below the index algorithms' breakeven, where All-Pairs wins and the old
// fixed index default loses) and the full check-in table (where the on-the-fly
// index wins). Each probe also records the algorithm the planner actually
// chose and the est-vs-actual row error of the aggregation's cardinality
// estimate, so the cost model itself is regression-tracked, not just the wall
// times.
func runPlannerProbes(db *engine.DB, n int, seed int64, timeout time.Duration) ([]plannerProbeResult, error) {
	const smallN = 200
	small := checkin.Generate(checkin.Config{N: smallN, Seed: seed + 1})
	if err := checkin.Load(db, "checkins_small", small); err != nil {
		return nil, err
	}
	if _, err := db.Exec("ANALYZE"); err != nil {
		return nil, err
	}

	type probe struct {
		name  string
		query string
		size  int
		eps   float64
		all   bool // DISTANCE-TO-ALL: Bounds-Checking is a candidate too
	}
	probes := []probe{
		{"planner_small_any_l2",
			"SELECT count(*) FROM checkins_small GROUP BY lat, lon DISTANCE-TO-ANY L2 WITHIN 0.25",
			smallN, 0.25, false},
		{"planner_small_all_linf",
			"SELECT count(*) FROM checkins_small GROUP BY lat, lon DISTANCE-TO-ALL LINF WITHIN 0.25 ON-OVERLAP JOIN-ANY",
			smallN, 0.25, true},
		{"planner_large_any_l2",
			fmt.Sprintf("SELECT count(*) FROM checkins GROUP BY lat, lon DISTANCE-TO-ANY L2 WITHIN %g", 0.25),
			n, 0.25, false},
		{"planner_large_all_linf",
			fmt.Sprintf("SELECT count(*) FROM checkins GROUP BY lat, lon DISTANCE-TO-ALL LINF WITHIN %g ON-OVERLAP ELIMINATE", 0.25),
			n, 0.25, true},
	}

	var out []plannerProbeResult
	for _, p := range probes {
		manual := map[string]core.Algorithm{
			"allpairs": core.AllPairs,
			"index":    core.IndexBounds,
		}
		if p.all {
			manual["bounds"] = core.BoundsChecking
		}
		res := plannerProbeResult{
			Name: p.name, Query: p.query, N: p.size, Eps: p.eps,
			ManualP50MS: make(map[string]float64, len(manual)),
		}
		variants := []plannerVariant{{"auto", db.SetSGBAlgorithmAuto}}
		for name, alg := range manual {
			a := alg
			variants = append(variants, plannerVariant{name, func() { db.SetSGBAlgorithm(a) }})
		}
		p50s, runs, err := timeVariantsP50(db, p.query, variants, timeout)
		if err != nil {
			return nil, fmt.Errorf("planner probe %s: %w", p.name, err)
		}
		db.SetSGBAlgorithmAuto()
		wantRows := -1
		for name := range manual {
			ms := float64(p50s[name].Nanoseconds()) / 1e6
			res.ManualP50MS[name] = ms
			if res.BestManualAlg == "" || ms < res.BestManualP50MS {
				res.BestManualAlg, res.BestManualP50MS = name, ms
			}
			if name == "index" {
				// The fixed pre-planner default, the speedup baseline.
				res.DefaultP50MS = ms
			}
			wantRows = len(runs[name].Rows)
		}
		if got := len(runs["auto"].Rows); got != wantRows {
			return nil, fmt.Errorf("planner probe %s: auto returned %d rows, manual %d",
				p.name, got, wantRows)
		}
		res.AutoP50MS = float64(p50s["auto"].Nanoseconds()) / 1e6
		res.ActualRows = wantRows
		if res.BestManualP50MS > 0 {
			res.AutoVsBest = res.AutoP50MS / res.BestManualP50MS
		}
		if res.AutoP50MS > 0 {
			res.SpeedupVsDefault = res.DefaultP50MS / res.AutoP50MS
		}

		// What did the planner pick, and how good was its cardinality estimate?
		plan, err := db.Exec("EXPLAIN ANALYZE " + p.query)
		if err != nil {
			return nil, fmt.Errorf("planner probe %s (explain): %w", p.name, err)
		}
		for _, row := range plan.Rows {
			line := row[0].String()
			if m := chosenAlgRe.FindStringSubmatch(line); m != nil && res.ChosenAlg == "" {
				res.ChosenAlg = m[1]
			}
			if m := estActualRe.FindStringSubmatch(line); m != nil && res.EstRows == 0 {
				est, _ := strconv.ParseFloat(m[1], 64)
				actual, _ := strconv.Atoi(m[2])
				res.EstRows = est
				denom := float64(actual)
				if denom < 1 {
					denom = 1
				}
				res.EstRowsError = math.Abs(est-float64(actual)) / denom
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// gatePlanner fails when cost-based selection left too much on the table: any
// planner probe whose auto p50 exceeds maxRatio times its best manual p50.
func gatePlanner(doc *benchDoc, maxRatio float64) error {
	var failures []string
	for _, pp := range doc.PlannerProbes {
		if pp.BestManualP50MS <= 0 {
			continue
		}
		if pp.AutoP50MS > pp.BestManualP50MS*maxRatio {
			failures = append(failures, fmt.Sprintf(
				"%s: auto %.3fms vs best manual (%s) %.3fms — ratio %.2f exceeds %.2f",
				pp.Name, pp.AutoP50MS, pp.BestManualAlg, pp.BestManualP50MS,
				pp.AutoVsBest, maxRatio))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("planner regression gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(os.Stderr, "gate: %d planner probes within %.2fx of their best manual algorithm\n",
		len(doc.PlannerProbes), maxRatio)
	return nil
}

// gateAgainst compares a fresh snapshot's kernel probes against a committed
// baseline document and errors when any probe's kernel-vs-scalar speedup
// regressed by more than 20%%. Comparing the speedup ratio rather than raw
// milliseconds keeps the gate meaningful across machines: both sides of the
// ratio are measured on the same host in the same process, so a ratio drop
// means the kernel itself lost ground to the scalar loop — the p50 regression
// the gate exists to catch.
func gateAgainst(doc *benchDoc, baselinePath string) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base benchDoc
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", baselinePath, err)
	}
	baseline := make(map[string]kernelProbeResult, len(base.KernelProbes))
	for _, kp := range base.KernelProbes {
		baseline[kp.Name] = kp
	}
	var failures []string
	for _, kp := range doc.KernelProbes {
		old, ok := baseline[kp.Name]
		if !ok || old.Speedup <= 0 {
			continue
		}
		if kp.Speedup < old.Speedup/1.2 {
			failures = append(failures, fmt.Sprintf(
				"%s: kernel speedup %.2fx vs baseline %.2fx (>20%% regression)",
				kp.Name, kp.Speedup, old.Speedup))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("kernel probe regression gate failed:\n  %s",
			strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(os.Stderr, "gate: %d kernel probes within 20%% of %s\n",
		len(doc.KernelProbes), baselinePath)
	return nil
}
