package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"time"

	"sgb/internal/checkin"
	"sgb/internal/core"
	"sgb/internal/engine"
	"sgb/internal/obs"
)

// The JSON probe suite is a fixed, fast workload whose output is committed
// as BENCH_<n>.json so the perf trajectory of the SGB pipeline is tracked
// across PRs: each probe records its query shape, input size, ε, wall time,
// and the cost counters of the paper's analysis (distance computations,
// rectangle tests, window queries, merges), plus a full engine metrics
// snapshot at the end of the run.
//
// Schema v2 additionally runs every probe twice — once serial, once with the
// configured morsel worker count — and records both wall times plus the
// speedup, so the parallel executor's trajectory is tracked alongside the
// algorithmic counters. Probes the planner refuses to parallelize (SGB-All
// modes, non-mergeable aggregates) naturally report a speedup near 1.
//
// Schema v3 raises the rep count and records the p50/p95/p99 wall times
// (nearest-rank over the parallel variant's samples) next to the minimum, so
// tail-latency regressions are visible even when the best-case time holds.

// probeResult is one probe run in the JSON document.
type probeResult struct {
	Name          string  `json:"name"`
	Query         string  `json:"query"`
	Algorithm     string  `json:"algorithm"`
	N             int     `json:"n"`
	Eps           float64 `json:"eps"`
	WallMS        float64 `json:"wall_ms"`
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
	P99MS         float64 `json:"p99_ms"`
	WallSerialMS  float64 `json:"wall_serial_ms"`
	Speedup       float64 `json:"speedup_vs_serial"`
	Workers       int     `json:"workers"`
	Batch         int     `json:"batch"`
	Rows          int     `json:"rows"`
	DistanceComps int64   `json:"distance_comps"`
	RectTests     int64   `json:"rect_tests"`
	HullTests     int64   `json:"hull_tests"`
	WindowQueries int64   `json:"window_queries"`
	IndexUpdates  int64   `json:"index_updates"`
	GroupsMerged  int64   `json:"groups_merged"`
	Rounds        int     `json:"rounds"`
}

// benchDoc is the whole machine-readable snapshot.
type benchDoc struct {
	SchemaVersion int           `json:"schema_version"`
	Dataset       string        `json:"dataset"`
	N             int           `json:"n"`
	Seed          int64         `json:"seed"`
	Workers       int           `json:"workers"`
	Batch         int           `json:"batch"`
	GOMAXPROCS    int           `json:"gomaxprocs"`
	Runs          []probeResult `json:"runs"`
	Metrics       obs.Snapshot  `json:"metrics"`
}

// probeReps is how many times each probe variant runs. The minimum wall time
// is reported for the speedup ratio (it filters scheduler noise on the
// sub-millisecond probes), and since schema v3 the sample distribution also
// yields p50/p95/p99 — enough reps that the p99 is a real observation rather
// than a copy of the max of three.
const probeReps = 9

// percentile returns the nearest-rank p-th percentile of sorted (ascending)
// samples: the smallest sample with at least p percent of the distribution at
// or below it.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// writeBenchJSON runs the probe suite and writes the document to path. A
// non-zero timeout bounds each probe's execution through the engine's
// cancellation machinery, so a runaway probe aborts mid-query rather than
// hanging the suite. workers <= 0 resolves to GOMAXPROCS; batch <= 0 keeps
// the engine default.
func writeBenchJSON(path string, n int, seed int64, timeout time.Duration, workers, batch int) error {
	db := engine.NewDB()
	cs := checkin.Generate(checkin.Config{N: n, Seed: seed})
	if err := checkin.Load(db, "checkins", cs); err != nil {
		return err
	}
	db.SetBatchSize(batch)
	db.SetParallelism(workers)
	workers = db.Parallelism()
	batch = db.BatchSize()

	const eps = 0.25
	type probe struct {
		name  string
		query string
		eps   float64
		alg   core.Algorithm
	}
	probes := []probe{
		{"sgb_all_join_any_l2_allpairs",
			fmt.Sprintf("SELECT count(*) FROM checkins GROUP BY lat, lon DISTANCE-TO-ALL L2 WITHIN %g ON-OVERLAP JOIN-ANY", eps),
			eps, core.AllPairs},
		{"sgb_all_join_any_l2_index",
			fmt.Sprintf("SELECT count(*) FROM checkins GROUP BY lat, lon DISTANCE-TO-ALL L2 WITHIN %g ON-OVERLAP JOIN-ANY", eps),
			eps, core.IndexBounds},
		{"sgb_all_eliminate_linf_index",
			fmt.Sprintf("SELECT count(*) FROM checkins GROUP BY lat, lon DISTANCE-TO-ALL LINF WITHIN %g ON-OVERLAP ELIMINATE", eps),
			eps, core.IndexBounds},
		{"sgb_all_form_new_group_linf_bounds",
			fmt.Sprintf("SELECT count(*) FROM checkins GROUP BY lat, lon DISTANCE-TO-ALL LINF WITHIN %g ON-OVERLAP FORM-NEW-GROUP", eps),
			eps, core.BoundsChecking},
		{"sgb_any_l2_index",
			fmt.Sprintf("SELECT count(*) FROM checkins GROUP BY lat, lon DISTANCE-TO-ANY L2 WITHIN %g", eps),
			eps, core.IndexBounds},
		{"hash_group_by_baseline",
			"SELECT user_id, count(*) FROM checkins GROUP BY user_id",
			0, core.IndexBounds},
		{"scan_filter_hash_agg",
			"SELECT user_id, count(*), avg(lat) FROM checkins WHERE lon > -96 GROUP BY user_id",
			0, core.IndexBounds},
	}

	// timeQuery runs q probeReps times under the current session settings and
	// returns the ascending-sorted wall-time samples with the fastest run's
	// result.
	timeQuery := func(q string, timeout time.Duration) ([]time.Duration, *engine.Result, error) {
		samples := make([]time.Duration, 0, probeReps)
		best := time.Duration(0)
		var bestRes *engine.Result
		for i := 0; i < probeReps; i++ {
			ctx, cancel := context.Background(), func() {}
			if timeout > 0 {
				ctx, cancel = context.WithTimeout(ctx, timeout)
			}
			start := time.Now()
			res, err := db.ExecContext(ctx, q)
			wall := time.Since(start)
			cancel()
			if err != nil {
				return nil, nil, err
			}
			samples = append(samples, wall)
			if bestRes == nil || wall < best {
				best, bestRes = wall, res
			}
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		return samples, bestRes, nil
	}

	doc := benchDoc{
		SchemaVersion: 3, Dataset: "checkin", N: n, Seed: seed,
		Workers: workers, Batch: batch, GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, p := range probes {
		db.SetSGBAlgorithm(p.alg)

		db.SetParallelism(1)
		serialSamples, serialRes, err := timeQuery(p.query, timeout)
		if err != nil {
			return fmt.Errorf("probe %s (serial): %w", p.name, err)
		}
		serialWall := serialSamples[0]

		db.SetParallelism(workers)
		samples, res, err := timeQuery(p.query, timeout)
		if err != nil {
			return fmt.Errorf("probe %s: %w", p.name, err)
		}
		wall := samples[0]
		if len(res.Rows) != len(serialRes.Rows) {
			return fmt.Errorf("probe %s: parallel returned %d rows, serial %d",
				p.name, len(res.Rows), len(serialRes.Rows))
		}

		run := probeResult{
			Name:         p.name,
			Query:        p.query,
			Algorithm:    p.alg.String(),
			N:            n,
			Eps:          p.eps,
			WallMS:       float64(wall.Nanoseconds()) / 1e6,
			P50MS:        float64(percentile(samples, 50).Nanoseconds()) / 1e6,
			P95MS:        float64(percentile(samples, 95).Nanoseconds()) / 1e6,
			P99MS:        float64(percentile(samples, 99).Nanoseconds()) / 1e6,
			WallSerialMS: float64(serialWall.Nanoseconds()) / 1e6,
			Workers:      workers,
			Batch:        batch,
			Rows:         len(res.Rows),
		}
		if wall > 0 {
			run.Speedup = float64(serialWall) / float64(wall)
		}
		if s := db.LastSGBStats(); s != nil {
			run.DistanceComps = s.DistanceComps
			run.RectTests = s.RectTests
			run.HullTests = s.HullTests
			run.WindowQueries = s.WindowQueries
			run.IndexUpdates = s.IndexUpdates
			run.GroupsMerged = s.GroupsMerged
			run.Rounds = s.Rounds
		}
		doc.Runs = append(doc.Runs, run)
	}
	doc.Metrics = db.Metrics().Snapshot()

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(doc)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	return err
}
