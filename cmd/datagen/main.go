// Command datagen writes the synthetic datasets to CSV files so they can be
// inspected or loaded into other systems.
//
//	datagen -dataset tpch -sf 1 -out ./data
//	datagen -dataset checkin -n 100000 -out ./data
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"sgb/internal/checkin"
	"sgb/internal/engine"
	"sgb/internal/tpch"
)

func main() {
	var (
		dataset = flag.String("dataset", "tpch", "dataset to generate: tpch or checkin")
		sf      = flag.Float64("sf", 1, "TPC-H scale factor")
		custSF  = flag.Int("custsf", 1500, "customer rows per scale factor unit")
		n       = flag.Int("n", 100000, "check-in count")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	switch *dataset {
	case "tpch":
		d := tpch.Generate(tpch.Config{SF: *sf, CustomersPerSF: *custSF, Seed: *seed})
		schemas := tpch.Schemas()
		tables := map[string][]engine.Row{
			"nation": d.Nations, "customer": d.Customers, "orders": d.Orders,
			"lineitem": d.Lineitems, "supplier": d.Suppliers, "partsupp": d.PartSupps,
		}
		for name, rows := range tables {
			if err := writeCSV(filepath.Join(*out, name+".csv"), schemas[name].Names(), rows); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s.csv (%d rows)\n", name, len(rows))
		}
	case "checkin":
		cs := checkin.Generate(checkin.Config{N: *n, Seed: *seed})
		rows := make([]engine.Row, len(cs))
		for i, c := range cs {
			rows[i] = engine.Row{
				engine.NewInt(int64(c.UserID)),
				engine.NewFloat(c.Lat),
				engine.NewFloat(c.Lon),
			}
		}
		if err := writeCSV(filepath.Join(*out, "checkins.csv"), checkin.Schema().Names(), rows); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote checkins.csv (%d rows)\n", len(rows))
	default:
		fatal(fmt.Errorf("unknown dataset %q", *dataset))
	}
}

func writeCSV(path string, header []string, rows []engine.Row) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	record := make([]string, len(header))
	for _, r := range rows {
		for i, v := range r {
			switch v.T {
			case engine.TypeFloat:
				record[i] = strconv.FormatFloat(v.F, 'f', -1, 64)
			default:
				record[i] = v.String()
			}
		}
		if err := w.Write(record); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
