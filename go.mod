module sgb

go 1.22
