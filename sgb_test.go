package sgb

import (
	"reflect"
	"sort"
	"testing"
)

// TestFacadeGroupAll exercises the public operator API end to end on the
// paper's Figure 2 example.
func TestFacadeGroupAll(t *testing.T) {
	points := []Point{{1, 1}, {2, 2}, {6, 1}, {7, 2}, {4, 1.5}}
	res, err := GroupAll(points, Options{Metric: LInf, Eps: 3, Overlap: JoinAny, Algorithm: IndexBounds})
	if err != nil {
		t.Fatal(err)
	}
	sizes := res.Sizes()
	sort.Ints(sizes)
	if !reflect.DeepEqual(sizes, []int{2, 3}) {
		t.Fatalf("sizes = %v", sizes)
	}
}

func TestFacadeGroupAny(t *testing.T) {
	points := []Point{{1, 1}, {2, 2}, {6, 1}, {7, 2}, {4, 1.5}}
	res, err := GroupAny(points, Options{Metric: LInf, Eps: 3, Algorithm: IndexBounds})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 || res.Groups[0].Len() != 5 {
		t.Fatalf("groups = %v", res.Groups)
	}
}

func TestFacadeStreaming(t *testing.T) {
	g, err := NewAllGrouper(Options{Metric: L2, Eps: 1.5, Overlap: Eliminate, Algorithm: BoundsChecking})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Point{{0, 0}, {1, 0}, {5, 5}} {
		if _, err := g.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	res, err := g.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("groups = %v", res.Groups)
	}

	a, err := NewAnyGrouper(Options{Metric: L2, Eps: 1.5, Algorithm: AllPairs})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Point{{0, 0}, {1, 0}, {2, 0}} {
		if _, err := a.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	ares, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(ares.Groups) != 1 {
		t.Fatalf("any groups = %v", ares.Groups)
	}
}

// TestFacadeSQL exercises the SQL entry point, including the similarity
// grammar and an aggregate.
func TestFacadeSQL(t *testing.T) {
	db := NewDB()
	steps := []string{
		"CREATE TABLE pts (id INT, x FLOAT, y FLOAT)",
		"INSERT INTO pts VALUES (1, 1, 1), (2, 2, 2), (3, 6, 1), (4, 7, 2), (5, 4, 1.5)",
	}
	for _, s := range steps {
		if _, err := db.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	res, err := db.Query(`
		SELECT count(*), list_id(id) FROM pts
		GROUP BY x, y DISTANCE-TO-ALL LINF WITHIN 3 ON-OVERLAP ELIMINATE`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for _, r := range res.Rows {
		if r[0].I != 2 {
			t.Fatalf("expected groups of 2, got %v", r[0])
		}
	}
}

func TestFacadeEnumsRoundTrip(t *testing.T) {
	if L2.String() != "L2" || LInf.String() != "LINF" {
		t.Error("metric constants mis-wired")
	}
	if JoinAny.String() != "JOIN-ANY" || FormNewGroup.String() != "FORM-NEW-GROUP" {
		t.Error("overlap constants mis-wired")
	}
	if AllPairs.String() != "All-Pairs" || IndexBounds.String() != "on-the-fly Index" {
		t.Error("algorithm constants mis-wired")
	}
}

func TestFacadeParallelMatchesSequential(t *testing.T) {
	points := []Point{{0, 0}, {1, 0}, {2, 0}, {9, 9}, {9.5, 9.5}}
	seq, err := GroupAny(points, Options{Metric: L1, Eps: 1.5, Algorithm: IndexBounds})
	if err != nil {
		t.Fatal(err)
	}
	par, err := GroupAnyParallel(points, Options{Metric: L1, Eps: 1.5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Groups, par.Groups) {
		t.Fatalf("parallel %v vs sequential %v", par.Groups, seq.Groups)
	}
}
