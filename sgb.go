// Package sgb is the public API of the similarity group-by library, a
// from-scratch Go reproduction of "Similarity Group-by Operators for
// Multi-dimensional Relational Data" (Tang et al.).
//
// Two entry points are provided:
//
//   - The operator API: GroupAll and GroupAny group multi-dimensional points
//     directly, with the paper's DISTANCE-TO-ALL and DISTANCE-TO-ANY
//     semantics, the Minkowski metrics (L2, LInf, plus L1 as an extension),
//     the three ON-OVERLAP arbitration clauses, and a choice of physical
//     algorithm (All-Pairs, Bounds-Checking, on-the-fly Index).
//
//   - The SQL API: NewDB opens an in-memory relational engine whose dialect
//     extends GROUP BY with the paper's similarity grammar, e.g.
//
//     SELECT count(*) FROM gpspoints
//     GROUP BY lat, lon DISTANCE-TO-ALL LINF WITHIN 3
//     ON-OVERLAP FORM-NEW-GROUP
//
// Streaming callers that cannot materialize their input ahead of time can
// use NewAllGrouper / NewAnyGrouper and feed points one at a time.
package sgb

import (
	"context"

	"sgb/internal/core"
	"sgb/internal/engine"
	"sgb/internal/geom"
)

// Point is a point in d-dimensional space.
type Point = geom.Point

// Metric selects the Minkowski distance function of the similarity
// predicate.
type Metric = geom.Metric

// Supported metrics.
const (
	// L2 is the Euclidean distance.
	L2 = geom.L2
	// LInf is the maximum (Chebyshev) distance.
	LInf = geom.LInf
	// L1 is the Manhattan distance (an extension beyond the paper's
	// L2/L∞ pair).
	L1 = geom.L1
)

// Overlap is the SGB-All ON-OVERLAP arbitration clause.
type Overlap = core.Overlap

// Overlap clauses.
const (
	// JoinAny places an overlapping tuple into one arbitrary candidate
	// group.
	JoinAny = core.JoinAny
	// Eliminate discards overlapping tuples.
	Eliminate = core.Eliminate
	// FormNewGroup re-groups overlapping tuples into dedicated groups.
	FormNewGroup = core.FormNewGroup
)

// Algorithm selects the physical operator implementation.
type Algorithm = core.Algorithm

// Algorithm variants, in increasing order of sophistication.
const (
	// AllPairs is the quadratic baseline.
	AllPairs = core.AllPairs
	// BoundsChecking filters with per-group ε-All bounding rectangles.
	BoundsChecking = core.BoundsChecking
	// IndexBounds adds an on-the-fly R-tree over the group rectangles
	// (SGB-All) or the processed points (SGB-Any).
	IndexBounds = core.IndexBounds
)

// Options configures a grouping operation.
type Options = core.Options

// Group is one output group (member indexes into the input).
type Group = core.Group

// Result is a grouping outcome: groups, eliminated tuples, and cost
// counters.
type Result = core.Result

// Stats holds the operator cost counters (distance computations, rectangle
// tests, window queries, ...).
type Stats = core.Stats

// AllGrouper is the streaming SGB-All operator.
type AllGrouper = core.AllGrouper

// AnyGrouper is the streaming SGB-Any operator.
type AnyGrouper = core.AnyGrouper

// GroupAll groups points with the DISTANCE-TO-ALL (clique) semantics: every
// pair of points in an output group is within Options.Eps under
// Options.Metric. Points are consumed in slice order; tuples matching
// several groups are arbitrated by Options.Overlap.
func GroupAll(points []Point, opt Options) (*Result, error) {
	return core.SGBAll(points, opt)
}

// GroupAny groups points with the DISTANCE-TO-ANY (connectivity) semantics:
// the output groups are the connected components of the ε-neighbourhood
// graph. Options.Overlap is ignored — overlapping groups merge.
func GroupAny(points []Point, opt Options) (*Result, error) {
	return core.SGBAny(points, opt)
}

// NewAllGrouper returns a streaming SGB-All operator.
func NewAllGrouper(opt Options) (*AllGrouper, error) { return core.NewAllGrouper(opt) }

// NewAnyGrouper returns a streaming SGB-Any operator.
func NewAnyGrouper(opt Options) (*AnyGrouper, error) { return core.NewAnyGrouper(opt) }

// DB is an in-memory relational database with similarity group-by support.
type DB = engine.DB

// QueryResult is a materialized SQL statement result.
type QueryResult = engine.Result

// Value is one SQL value.
type Value = engine.Value

// Row is one SQL tuple.
type Row = engine.Row

// NewDB opens an empty in-memory database. Create tables and load data with
// DB.Exec (CREATE TABLE / INSERT) or programmatically through DB.Catalog,
// then query with the similarity-extended SQL dialect.
func NewDB() *DB { return engine.NewDB() }

// GroupAnyParallel computes the DISTANCE-TO-ANY grouping with a grid-
// partitioned parallel algorithm (an extension beyond the paper; the result
// is identical to GroupAny). workers <= 0 selects GOMAXPROCS.
func GroupAnyParallel(points []Point, opt Options, workers int) (*Result, error) {
	return core.SGBAnyParallel(points, opt, workers)
}

// GroupAnyParallelCtx is GroupAnyParallel with a cancellation context: once
// ctx is done the workers drain out and the call returns ctx.Err() instead of
// a partial result.
func GroupAnyParallelCtx(ctx context.Context, points []Point, opt Options, workers int) (*Result, error) {
	return core.SGBAnyParallelCtx(ctx, points, opt, workers)
}

// Limits bounds the resources a single SQL statement may consume; install
// with DB.SetLimits. A query that exceeds a limit fails with a typed
// *ResourceLimitError.
type Limits = engine.Limits

// ResourceLimitError is the typed error a statement fails with when it
// exceeds a configured per-query limit.
type ResourceLimitError = engine.ResourceLimitError

// GroupSummary describes one output group geometrically (size, centroid,
// bounding rectangle, 2-D hull, diameter).
type GroupSummary = core.GroupSummary

// Summarize computes per-group geometric summaries for a grouping result.
func Summarize(points []Point, res *Result, m Metric) ([]GroupSummary, error) {
	return core.Summarize(points, res, m)
}
